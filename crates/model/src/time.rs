//! Picosecond-resolution global time and per-domain clock arithmetic.
//!
//! The SegBus platform is a *globally asynchronous, locally synchronous*
//! (GALS) design: every segment and the central arbiter run in their own
//! clock domain (the paper's example uses 91, 98, 89 and 111 MHz). The
//! emulator counts *clock ticks* per domain but compares and reports times
//! globally; we therefore keep one global timeline in integer picoseconds
//! and convert ticks ⇄ picoseconds per domain.
//!
//! The paper reports e.g. `CA TCT = 54367` and
//! `Execution time = 489792303ps @ 111.00MHz`; with the rounded period
//! `1 ps · round(10^6 / 111) = 9009 ps` we get `54367 × 9009 = 489 792 303`,
//! i.e. the paper itself works with integer-picosecond periods. We follow
//! the same convention (see [`ClockDomain::from_mhz`]).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on (or a span of) the global timeline, in integer picoseconds.
///
/// `u64` picoseconds cover ~213 days, far beyond any emulation run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Picos(pub u64);

impl Picos {
    /// Time zero — the start of the emulation.
    pub const ZERO: Picos = Picos(0);

    /// Saturating subtraction, clamping at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Picos) -> Picos {
        Picos(self.0.saturating_sub(rhs.0))
    }

    /// Value in microseconds as a float (for reports; the paper prints µs).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in nanoseconds as a float.
    #[inline]
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, other: Picos) -> Picos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Picos {
    type Output = Picos;
    #[inline]
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    #[inline]
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    #[inline]
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

/// A clock domain: a frequency expressed as an integer period in picoseconds.
///
/// Components belonging to a domain act only on that domain's clock edges;
/// converting a global instant into the domain therefore *rounds up* to the
/// next edge (see [`ClockDomain::next_edge`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClockDomain {
    period_ps: u64,
}

impl ClockDomain {
    /// Create a domain from an integer period in picoseconds.
    ///
    /// # Panics
    /// Panics if `period_ps` is zero.
    pub fn from_period_ps(period_ps: u64) -> ClockDomain {
        assert!(period_ps > 0, "clock period must be non-zero");
        ClockDomain { period_ps }
    }

    /// Fallible variant of [`ClockDomain::from_period_ps`] for untrusted
    /// inputs: returns `None` instead of panicking on a zero period.
    pub fn try_from_period_ps(period_ps: u64) -> Option<ClockDomain> {
        (period_ps > 0).then_some(ClockDomain { period_ps })
    }

    /// Fallible variant of [`ClockDomain::from_mhz`]: returns `None` if
    /// `mhz` is not a positive finite number.
    pub fn try_from_mhz(mhz: f64) -> Option<ClockDomain> {
        if !(mhz.is_finite() && mhz > 0.0) {
            return None;
        }
        let period = (1_000_000.0 / mhz).round() as u64;
        ClockDomain::try_from_period_ps(period.max(1))
    }

    /// Create a domain from a frequency in MHz, rounding the period to the
    /// nearest picosecond (the paper's convention: 111 MHz ⇒ 9009 ps).
    ///
    /// # Panics
    /// Panics if `mhz` is not a positive finite number.
    pub fn from_mhz(mhz: f64) -> ClockDomain {
        assert!(mhz.is_finite() && mhz > 0.0, "frequency must be positive");
        let period = (1_000_000.0 / mhz).round() as u64;
        ClockDomain::from_period_ps(period.max(1))
    }

    /// The period in picoseconds.
    #[inline]
    pub fn period_ps(&self) -> u64 {
        self.period_ps
    }

    /// The frequency in MHz implied by the integer period.
    #[inline]
    pub fn mhz(&self) -> f64 {
        1_000_000.0 / self.period_ps as f64
    }

    /// Duration of `ticks` clock ticks.
    #[inline]
    pub fn ticks_to_picos(&self, ticks: u64) -> Picos {
        Picos(ticks * self.period_ps)
    }

    /// Number of *complete* ticks elapsed at global instant `t`
    /// (`floor(t / period)`).
    #[inline]
    pub fn ticks_at(&self, t: Picos) -> u64 {
        t.0 / self.period_ps
    }

    /// Number of ticks needed to cover `t`, rounding up
    /// (`ceil(t / period)`). This is the tick count a component in this
    /// domain "consumes" while an activity of length `t` is ongoing.
    #[inline]
    pub fn ticks_covering(&self, t: Picos) -> u64 {
        t.0.div_ceil(self.period_ps)
    }

    /// The earliest clock edge at or after the global instant `t`.
    ///
    /// A component in this domain that becomes ready at `t` can only act at
    /// `next_edge(t)`.
    #[inline]
    pub fn next_edge(&self, t: Picos) -> Picos {
        Picos(t.0.div_ceil(self.period_ps) * self.period_ps)
    }

    /// The edge strictly after `t`.
    #[inline]
    pub fn edge_after(&self, t: Picos) -> Picos {
        Picos((t.0 / self.period_ps + 1) * self.period_ps)
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}MHz", self.mhz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_periods_round_as_printed() {
        // The four frequencies used in the paper's 3-segment experiment.
        assert_eq!(ClockDomain::from_mhz(91.0).period_ps(), 10989);
        assert_eq!(ClockDomain::from_mhz(98.0).period_ps(), 10204);
        assert_eq!(ClockDomain::from_mhz(89.0).period_ps(), 11236);
        assert_eq!(ClockDomain::from_mhz(111.0).period_ps(), 9009);
    }

    #[test]
    fn paper_execution_time_identity() {
        // CA TCT = 54367 @ 111 MHz ⇒ 489 792 303 ps, as printed in §4.
        let ca = ClockDomain::from_mhz(111.0);
        assert_eq!(ca.ticks_to_picos(54367), Picos(489_792_303));
        // SA1 TCT = 34764 @ 91 MHz ⇒ 382 021 596 ps.
        let s1 = ClockDomain::from_mhz(91.0);
        assert_eq!(s1.ticks_to_picos(34764), Picos(382_021_596));
        // SA2 TCT = 46031 @ 98 MHz ⇒ 469 700 324 ps.
        let s2 = ClockDomain::from_mhz(98.0);
        assert_eq!(s2.ticks_to_picos(46031), Picos(469_700_324));
        // SA3 TCT = 35884 @ 89 MHz ⇒ 403 192 624 ps. The paper prints
        // 403156740 (it used 89.01 MHz there); we assert our own identity.
        let s3 = ClockDomain::from_mhz(89.0);
        assert_eq!(s3.ticks_to_picos(35884), Picos(35884 * 11236));
    }

    #[test]
    fn edges_round_up() {
        let d = ClockDomain::from_period_ps(10);
        assert_eq!(d.next_edge(Picos(0)), Picos(0));
        assert_eq!(d.next_edge(Picos(1)), Picos(10));
        assert_eq!(d.next_edge(Picos(10)), Picos(10));
        assert_eq!(d.edge_after(Picos(10)), Picos(20));
        assert_eq!(d.edge_after(Picos(9)), Picos(10));
    }

    #[test]
    fn tick_conversions() {
        let d = ClockDomain::from_period_ps(100);
        assert_eq!(d.ticks_to_picos(7), Picos(700));
        assert_eq!(d.ticks_at(Picos(799)), 7);
        assert_eq!(d.ticks_covering(Picos(701)), 8);
        assert_eq!(d.ticks_covering(Picos(700)), 7);
    }

    #[test]
    fn picos_arithmetic() {
        assert_eq!(Picos(5) + Picos(6), Picos(11));
        assert_eq!(Picos(6) - Picos(5), Picos(1));
        assert_eq!(Picos(5).saturating_sub(Picos(9)), Picos::ZERO);
        assert_eq!(Picos(5).max(Picos(9)), Picos(9));
        assert_eq!(Picos(1_000_000).as_micros_f64(), 1.0);
    }

    #[test]
    #[should_panic(expected = "clock period")]
    fn zero_period_rejected() {
        let _ = ClockDomain::from_period_ps(0);
    }
}
