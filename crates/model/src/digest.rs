//! Content-addressed hashing of models.
//!
//! The sweep service caches completed [`crate::mapping::Psm`] emulation
//! reports keyed on *what the engine would compute*, not on where the
//! model came from. [`Psm::digest`] therefore hashes a canonical encoding
//! of every semantic field — topology, package size, clock periods, cost
//! model, process kinds, flows and the allocation — and deliberately
//! excludes presentation-only data (application, platform, segment and
//! process *names*): two models that differ only in naming produce
//! bit-identical reports, so they may share a cache entry.
//!
//! The hash is 64-bit FNV-1a over a tagged, length-prefixed byte stream.
//! Every variable-length sequence is preceded by its length and every
//! section by a distinct tag byte, so no two different field layouts can
//! serialise to the same stream (the classic `("ab","c")` vs `("a","bc")`
//! ambiguity). FNV-1a is not cryptographic; the cache tolerates the
//! ~`n²/2⁶⁵` accidental-collision probability, which is negligible for
//! any realistic number of distinct models.
//!
//! The encoding is part of the service's cache contract (DESIGN.md §10):
//! changing it invalidates persisted digests, so extend it only by adding
//! new tagged sections.

use crate::mapping::Psm;
use crate::psdf::{CostModel, ProcessKind};

/// Incremental 64-bit FNV-1a hasher.
///
/// Shared by [`Psm::digest`] and the emulator-configuration digest in
/// `segbus-core`, so both halves of a cache key use the same function.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorb one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorb a little-endian `u16`.
    #[inline]
    pub fn write_u16(&mut self, v: u16) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorb a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorb a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorb a byte slice *without* a length prefix (callers prefix
    /// lengths themselves where ambiguity is possible).
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// The current hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

// Section tags of the canonical PSM encoding. Distinct per section so a
// stream can never be re-parsed under a different field layout.
const TAG_PLATFORM: u8 = 0x01;
const TAG_COST: u8 = 0x02;
const TAG_PROCESSES: u8 = 0x03;
const TAG_FLOWS: u8 = 0x04;
const TAG_ALLOCATION: u8 = 0x05;

impl Psm {
    /// Stable 64-bit content digest of the model's semantics.
    ///
    /// Two PSMs with equal digests are (up to hash collision) guaranteed
    /// to produce bit-identical [`EmulationReport`]s under equal emulator
    /// configurations; any change to a semantic field — topology, package
    /// size, a clock period, the cost model, a process kind, any flow
    /// field, or any placement — changes the digest. Names are excluded
    /// (see the module docs).
    ///
    /// [`EmulationReport`]: https://docs.rs/segbus-core
    pub fn digest(&self) -> u64 {
        let mut h = self.digest_prefix();
        h.write_u8(TAG_ALLOCATION);
        let app = self.application();
        h.write_u64(app.process_count() as u64);
        for i in 0..app.process_count() {
            h.write_u16(self.segment_of(crate::ids::ProcessId(i as u32)).0);
        }
        h.finish()
    }

    /// The allocation-independent prefix of [`Psm::digest`]: the hasher
    /// state after the platform, cost-model, process and flow sections,
    /// *before* the trailing allocation section.
    ///
    /// The allocation is deliberately the final section of the canonical
    /// encoding so that placement search — which evaluates thousands of
    /// allocations of one fixed platform + application — can hash the
    /// invariant part once and finish each candidate with
    /// [`digest_with_slots`] in O(processes) instead of re-encoding the
    /// whole model per candidate.
    pub fn digest_prefix(&self) -> Fnv64 {
        let mut h = Fnv64::new();
        let platform = self.platform();
        let app = self.application();

        h.write_u8(TAG_PLATFORM);
        h.write_u8(match platform.topology() {
            crate::platform::Topology::Linear => 0,
            crate::platform::Topology::Ring => 1,
        });
        h.write_u32(platform.package_size());
        h.write_u64(platform.ca_clock().period_ps());
        h.write_u64(platform.segment_count() as u64);
        for seg in platform.segments() {
            h.write_u64(seg.clock.period_ps());
        }

        h.write_u8(TAG_COST);
        match app.cost_model() {
            CostModel::PerItem {
                reference_package_size,
            } => {
                h.write_u8(0);
                h.write_u32(reference_package_size.get());
            }
            CostModel::PerPackage => h.write_u8(1),
            CostModel::Affine {
                base_ticks,
                reference_package_size,
            } => {
                h.write_u8(2);
                h.write_u64(base_ticks);
                h.write_u32(reference_package_size.get());
            }
        }

        h.write_u8(TAG_PROCESSES);
        h.write_u64(app.process_count() as u64);
        for p in app.processes() {
            h.write_u8(match p.kind {
                ProcessKind::Initial => 0,
                ProcessKind::Internal => 1,
                ProcessKind::Final => 2,
            });
        }

        h.write_u8(TAG_FLOWS);
        h.write_u64(app.flows().len() as u64);
        for f in app.flows() {
            h.write_u32(f.src.0);
            h.write_u32(f.dst.0);
            h.write_u64(f.items);
            h.write_u32(f.order);
            h.write_u64(f.ticks);
        }

        h
    }
}

/// Complete an allocation-independent [`Psm::digest_prefix`] into the full
/// model digest for the placement described by `slots` (`slots[p]` is the
/// segment index process `p` is assigned to).
///
/// For any complete allocation this equals [`Psm::digest`] of the same
/// platform + application re-validated under that allocation; the digest
/// tests pin the equivalence.
pub fn digest_with_slots(prefix: Fnv64, slots: &[u16]) -> u64 {
    let mut h = prefix;
    h.write_u8(TAG_ALLOCATION);
    h.write_u64(slots.len() as u64);
    for &s in slots {
        h.write_u16(s);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ProcessId, SegmentId};
    use crate::mapping::Allocation;
    use crate::platform::Platform;
    use crate::psdf::{Application, Flow, Process};
    use crate::time::ClockDomain;

    fn psm(items: u64, size: u32, mhz: f64) -> Psm {
        let platform = Platform::builder("t")
            .package_size(size)
            .uniform_segments(2, ClockDomain::from_mhz(mhz))
            .build()
            .unwrap();
        let mut app = Application::new("a");
        let p0 = app.add_process(Process::initial("P0"));
        let p1 = app.add_process(Process::final_("P1"));
        app.add_flow(Flow::new(p0, p1, items, 1, 10)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(p0, SegmentId(0));
        alloc.assign(p1, SegmentId(1));
        Psm::new(platform, app, alloc).unwrap()
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf29ce484222325, "offset basis");
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c, "fnv1a(\"a\")");
        let mut h = Fnv64::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8, "fnv1a(\"foobar\")");
    }

    #[test]
    fn digest_is_deterministic_and_name_blind() {
        let a = psm(72, 36, 100.0);
        assert_eq!(a.digest(), a.digest());
        assert_eq!(a.digest(), a.clone().digest());
        // Same structure under different names: same digest by design.
        let platform = Platform::builder("other-name")
            .package_size(36)
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let mut app = Application::new("renamed");
        let p0 = app.add_process(Process::initial("X"));
        let p1 = app.add_process(Process::final_("Y"));
        app.add_flow(Flow::new(p0, p1, 72, 1, 10)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(p0, SegmentId(0));
        alloc.assign(p1, SegmentId(1));
        let b = Psm::new(platform, app, alloc).unwrap();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn every_semantic_mutation_changes_the_digest() {
        let base = psm(72, 36, 100.0);
        let d = base.digest();
        // Items.
        assert_ne!(d, psm(73, 36, 100.0).digest());
        // Package size.
        assert_ne!(d, base.with_package_size(18).unwrap().digest());
        // Clock period.
        assert_ne!(d, psm(72, 36, 98.0).digest());
        // Placement.
        assert_ne!(
            d,
            base.with_process_moved(ProcessId(1), SegmentId(0))
                .unwrap()
                .digest()
        );
        // Cost model.
        let mut app = base.application().clone();
        app.set_cost_model(CostModel::affine(5, 36).unwrap());
        let cm = Psm::new(base.platform().clone(), app, base.allocation().clone()).unwrap();
        assert_ne!(d, cm.digest());
    }

    #[test]
    fn prefix_plus_slots_equals_full_digest() {
        let base = psm(72, 36, 100.0);
        let prefix = base.digest_prefix();
        assert_eq!(digest_with_slots(prefix, &[0, 1]), base.digest());
        // Same prefix finishes any other placement of the same model.
        let moved = base.with_process_moved(ProcessId(1), SegmentId(0)).unwrap();
        assert_eq!(digest_with_slots(prefix, &[0, 0]), moved.digest());
        assert_ne!(digest_with_slots(prefix, &[0, 0]), base.digest());
    }

    #[test]
    fn flow_order_and_ticks_are_semantic() {
        let mk = |order: u32, ticks: u64| {
            let platform = Platform::builder("t")
                .uniform_segments(1, ClockDomain::from_mhz(100.0))
                .build()
                .unwrap();
            let mut app = Application::new("a");
            let p0 = app.add_process(Process::initial("P0"));
            let p1 = app.add_process(Process::final_("P1"));
            app.add_flow(Flow::new(p0, p1, 36, order, ticks)).unwrap();
            let mut alloc = Allocation::new(1);
            alloc.assign(p0, SegmentId(0));
            alloc.assign(p1, SegmentId(0));
            Psm::new(platform, app, alloc).unwrap()
        };
        assert_ne!(mk(1, 10).digest(), mk(2, 10).digest());
        assert_ne!(mk(1, 10).digest(), mk(1, 11).digest());
    }
}
