//! Packet Synchronous Data Flow (PSDF) application models.
//!
//! A PSDF (paper §3.1) consists of *processes* and *packet flows*. A flow is
//! the tuple `(Pt, D, T, C)`:
//!
//! * `Pt` — the target process of the flow's transactions;
//! * `D`  — the number of data items emitted by the source towards `Pt`
//!   (transformed into `ceil(D/s)` packages for platform package size `s`);
//! * `T`  — a relative ordering number among the flows of the system; flows
//!   that share an ordering number may coexist during execution;
//! * `C`  — the number of clock ticks the source process consumes before
//!   sending one package.
//!
//! The paper re-uses one PSDF with two package sizes (36 and 18 items) and
//! observes only a modest slowdown at the smaller size, so `C` cannot be a
//! size-independent per-package constant. [`CostModel`] makes the
//! interpretation explicit: [`CostModel::PerItem`] (the default used for the
//! paper experiments) treats `C` as the cost of one package *at the PSDF's
//! reference package size* and scales it proportionally when the platform
//! repackages the stream; [`CostModel::PerPackage`] uses `C` verbatim.

use std::collections::BTreeMap;
use std::fmt;
use std::num::NonZeroU32;

use crate::error::ModelError;
use crate::ids::{FlowId, ProcessId};
use crate::stochastic::FlowNoise;

/// Role of a process inside the dataflow graph.
///
/// The paper's DSL extension introduces the stereotypes *InitialNode*,
/// *ProcessNode* and *FinalNode* (§2.2); these map to the three variants.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcessKind {
    /// A source of the application; starts executing immediately.
    Initial,
    /// An interior process: consumes input packages, produces output ones.
    Internal,
    /// A sink (system output); only consumes.
    Final,
}

impl fmt::Display for ProcessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProcessKind::Initial => "initial",
            ProcessKind::Internal => "process",
            ProcessKind::Final => "final",
        })
    }
}

/// An application process (a functional unit's workload).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Process {
    /// Human-readable name (`"P0"`, `"P1"`, … in the paper).
    pub name: String,
    /// Dataflow role.
    pub kind: ProcessKind,
}

impl Process {
    /// An interior process.
    pub fn new(name: impl Into<String>) -> Process {
        Process {
            name: name.into(),
            kind: ProcessKind::Internal,
        }
    }

    /// An initial (source) process.
    pub fn initial(name: impl Into<String>) -> Process {
        Process {
            name: name.into(),
            kind: ProcessKind::Initial,
        }
    }

    /// A final (sink) process. Named `final_` because `final` is reserved.
    pub fn final_(name: impl Into<String>) -> Process {
        Process {
            name: name.into(),
            kind: ProcessKind::Final,
        }
    }
}

/// A packet flow `(Pt, D, T, C)` with its source process made explicit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Flow {
    /// Source process emitting the data.
    pub src: ProcessId,
    /// Target process (`Pt`).
    pub dst: ProcessId,
    /// Number of data items (`D`).
    pub items: u64,
    /// Relative ordering number (`T`); flows sharing a value may coexist.
    pub order: u32,
    /// Clock ticks consumed by the source per package (`C`), interpreted
    /// through the application's [`CostModel`].
    pub ticks: u64,
}

impl Flow {
    /// Create a flow. Use [`Application::add_flow`] to attach it.
    pub fn new(src: ProcessId, dst: ProcessId, items: u64, order: u32, ticks: u64) -> Flow {
        Flow {
            src,
            dst,
            items,
            order,
            ticks,
        }
    }

    /// Number of packages this flow produces at platform package size `s`.
    #[inline]
    pub fn packages(&self, package_size: u32) -> u64 {
        debug_assert!(package_size > 0);
        self.items.div_ceil(package_size as u64)
    }
}

/// Interpretation of a flow's `C` value under repackaging.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CostModel {
    /// `C` is the per-package cost at `reference_package_size`; the cost per
    /// package at platform size `s` is `round(C · s / reference)`. Total
    /// compute time is (approximately) invariant under repackaging, which is
    /// the behaviour the paper's 18-vs-36 experiment exhibits.
    PerItem {
        /// Package size at which the PSDF's `C` values were specified.
        /// Non-zero by construction — the value is a divisor.
        reference_package_size: NonZeroU32,
    },
    /// `C` is a fixed per-package cost regardless of package size.
    PerPackage,
    /// Affine model: one package costs a fixed `base_ticks` (packetisation,
    /// per-package software overhead) plus a data-proportional part; the
    /// PSDF's `C` is the total at `reference_package_size`, so at platform
    /// size `s` a package costs `base + round((C − base) · s / reference)`.
    ///
    /// This is the model that reproduces the paper's observed ~14 %
    /// slowdown when halving the package size (see EXPERIMENTS.md): pure
    /// per-item costs are invariant under repackaging, pure per-package
    /// costs double — the measured behaviour sits in between.
    Affine {
        /// Fixed ticks per package, independent of its size.
        base_ticks: u64,
        /// Package size at which the PSDF's `C` values were specified.
        /// Non-zero by construction — the value is a divisor.
        reference_package_size: NonZeroU32,
    },
}

impl CostModel {
    /// The paper's reference package size (36 items), as the non-zero
    /// type the cost models carry.
    pub const REFERENCE_36: NonZeroU32 = match NonZeroU32::new(36) {
        Some(n) => n,
        None => unreachable!(),
    };

    /// A [`CostModel::PerItem`] at `reference`, or `None` when the
    /// reference is zero (it is a divisor).
    pub fn per_item(reference: u32) -> Option<CostModel> {
        Some(CostModel::PerItem {
            reference_package_size: NonZeroU32::new(reference)?,
        })
    }

    /// A [`CostModel::Affine`] at `reference`, or `None` when the
    /// reference is zero (it is a divisor).
    pub fn affine(base_ticks: u64, reference: u32) -> Option<CostModel> {
        Some(CostModel::Affine {
            base_ticks,
            reference_package_size: NonZeroU32::new(reference)?,
        })
    }

    /// Processing ticks the producer spends on one package of size
    /// `package_size`, for a flow annotated with `c` ticks.
    ///
    /// Total-function by construction: the reference package size is a
    /// [`NonZeroU32`], so the division cannot trap on any value of the
    /// type (ROADMAP item C007).
    #[inline]
    pub fn ticks_per_package(&self, c: u64, package_size: u32) -> u64 {
        match *self {
            CostModel::PerItem {
                reference_package_size,
            } => {
                let r = reference_package_size.get() as u64;
                // round(c * s / r) in integer arithmetic
                (c * package_size as u64 + r / 2) / r
            }
            CostModel::PerPackage => c,
            CostModel::Affine {
                base_ticks,
                reference_package_size,
            } => {
                let r = reference_package_size.get() as u64;
                let variable = c.saturating_sub(base_ticks);
                base_ticks + (variable * package_size as u64 + r / 2) / r
            }
        }
    }
}

impl Default for CostModel {
    /// The paper's MP3 PSDF uses 36-item packages as its reference.
    fn default() -> Self {
        CostModel::PerItem {
            reference_package_size: CostModel::REFERENCE_36,
        }
    }
}

/// A group of flows sharing one ordering number `T`.
///
/// Under the wave semantics (DESIGN.md §4) the flows of wave `k` become
/// eligible once every flow of wave `k-1` has fully delivered.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Wave {
    /// The shared ordering value.
    pub order: u32,
    /// Flows in this wave, in insertion order.
    pub flows: Vec<FlowId>,
}

/// A complete PSDF application: processes plus packet flows.
#[derive(Clone, PartialEq, Debug)]
pub struct Application {
    name: String,
    processes: Vec<Process>,
    flows: Vec<Flow>,
    cost_model: CostModel,
    /// Stochastic annotations, keyed by flow (see [`crate::stochastic`]).
    /// A sidecar so [`Flow`] stays `Copy` and the base model stays a
    /// plain deterministic PSM; excluded from [`crate::digest`].
    noise: BTreeMap<FlowId, FlowNoise>,
}

impl Application {
    /// Create an empty application with the default [`CostModel`].
    pub fn new(name: impl Into<String>) -> Application {
        Application {
            name: name.into(),
            processes: Vec::new(),
            flows: Vec::new(),
            cost_model: CostModel::default(),
            noise: BTreeMap::new(),
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The active cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// Replace the cost model (builder-style).
    pub fn with_cost_model(mut self, cm: CostModel) -> Application {
        self.cost_model = cm;
        self
    }

    /// Set the cost model in place.
    pub fn set_cost_model(&mut self, cm: CostModel) {
        self.cost_model = cm;
    }

    /// Add a process, returning its id.
    pub fn add_process(&mut self, p: Process) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(p);
        id
    }

    /// Add a flow after checking that it is representable.
    pub fn add_flow(&mut self, f: Flow) -> Result<FlowId, ModelError> {
        if f.src.index() >= self.processes.len() {
            return Err(ModelError::UnknownProcess(f.src));
        }
        if f.dst.index() >= self.processes.len() {
            return Err(ModelError::UnknownProcess(f.dst));
        }
        if f.src == f.dst {
            return Err(ModelError::SelfFlow(f.src));
        }
        if f.items == 0 {
            return Err(ModelError::EmptyFlow {
                src: f.src,
                dst: f.dst,
            });
        }
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(f);
        Ok(id)
    }

    /// All processes, indexable by [`ProcessId`].
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// All flows, indexable by [`FlowId`].
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Look up a process by id.
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.index()]
    }

    /// Look up a flow by id.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.index()]
    }

    /// Find a process id by name.
    pub fn process_by_name(&self, name: &str) -> Option<ProcessId> {
        self.processes
            .iter()
            .position(|p| p.name == name)
            .map(|i| ProcessId(i as u32))
    }

    /// Ids of the flows whose source is `p`, in flow order.
    pub fn outputs_of(&self, p: ProcessId) -> impl Iterator<Item = FlowId> + '_ {
        self.flows
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.src == p)
            .map(|(i, _)| FlowId(i as u32))
    }

    /// Ids of the flows whose destination is `p`, in flow order.
    pub fn inputs_of(&self, p: ProcessId) -> impl Iterator<Item = FlowId> + '_ {
        self.flows
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.dst == p)
            .map(|(i, _)| FlowId(i as u32))
    }

    /// Processes with no incoming flows (the graph's sources).
    pub fn sources(&self) -> Vec<ProcessId> {
        (0..self.processes.len() as u32)
            .map(ProcessId)
            .filter(|&p| self.inputs_of(p).next().is_none())
            .collect()
    }

    /// Processes with no outgoing flows (the graph's sinks).
    pub fn sinks(&self) -> Vec<ProcessId> {
        (0..self.processes.len() as u32)
            .map(ProcessId)
            .filter(|&p| self.outputs_of(p).next().is_none())
            .collect()
    }

    /// Total number of data items carried by all flows.
    pub fn total_items(&self) -> u64 {
        self.flows.iter().map(|f| f.items).sum()
    }

    /// Total number of packages at package size `s`.
    pub fn total_packages(&self, package_size: u32) -> u64 {
        self.flows.iter().map(|f| f.packages(package_size)).sum()
    }

    /// Group flows by ordering number, ascending (the execution *waves*).
    pub fn waves(&self) -> Vec<Wave> {
        let mut by_order: BTreeMap<u32, Vec<FlowId>> = BTreeMap::new();
        for (i, f) in self.flows.iter().enumerate() {
            by_order.entry(f.order).or_default().push(FlowId(i as u32));
        }
        by_order
            .into_iter()
            .map(|(order, flows)| Wave { order, flows })
            .collect()
    }

    /// `true` if every flow's ordering number is strictly greater than the
    /// ordering number of every flow delivering input to its source —
    /// i.e. the wave schedule respects data dependencies. Initial processes
    /// (no inputs) are unconstrained.
    pub fn orders_respect_dependencies(&self) -> bool {
        self.flows.iter().all(|f| {
            self.inputs_of(f.src)
                .all(|in_id| self.flow(in_id).order < f.order)
        })
    }

    /// Assign ordering numbers by topological wave: sources' flows get
    /// order 1, flows from processes whose inputs all arrive in waves `< k`
    /// get order `k`. Returns an error if the graph has a cycle.
    ///
    /// Useful for generated applications; the MP3 model carries the paper's
    /// explicit ordering.
    pub fn assign_orders_topologically(&mut self) -> Result<(), ModelError> {
        let n = self.processes.len();
        // level[p] = wave in which p's outputs may start (1-based).
        let mut level = vec![0u32; n];
        let mut indeg = vec![0usize; n];
        for f in &self.flows {
            indeg[f.dst.index()] += 1;
        }
        let mut queue: Vec<ProcessId> = (0..n as u32)
            .map(ProcessId)
            .filter(|p| indeg[p.index()] == 0)
            .collect();
        for &p in &queue {
            level[p.index()] = 1;
        }
        let mut visited = 0usize;
        let mut qi = 0usize;
        while qi < queue.len() {
            let p = queue[qi];
            qi += 1;
            visited += 1;
            let lp = level[p.index()];
            for (i, f) in self.flows.iter().enumerate() {
                let _ = i;
                if f.src != p {
                    continue;
                }
                let d = f.dst.index();
                if level[d] < lp + 1 {
                    level[d] = lp + 1;
                }
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    queue.push(f.dst);
                }
            }
        }
        if visited != n {
            // A cycle: report the first process involved.
            let p = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| ProcessId(i as u32))
                .unwrap_or(ProcessId(0));
            return Err(ModelError::UnknownProcess(p));
        }
        for f in &mut self.flows {
            f.order = level[f.src.index()];
        }
        Ok(())
    }

    /// Largest ordering number used, or 0 for an empty application.
    pub fn max_order(&self) -> u32 {
        self.flows.iter().map(|f| f.order).max().unwrap_or(0)
    }

    /// Processing ticks the producer of `flow` spends per package at
    /// platform package size `s` (applies the cost model).
    #[inline]
    pub fn ticks_per_package(&self, flow: FlowId, package_size: u32) -> u64 {
        self.cost_model
            .ticks_per_package(self.flow(flow).ticks, package_size)
    }

    /// Attach stochastic annotations to a flow (replacing any present).
    /// An empty [`FlowNoise`] removes the entry. Rejects unknown flows and
    /// invalid distribution parameters ([`ModelError::InvalidNoise`]).
    pub fn set_flow_noise(&mut self, flow: FlowId, noise: FlowNoise) -> Result<(), ModelError> {
        if flow.index() >= self.flows.len() {
            return Err(ModelError::InvalidNoise {
                flow,
                reason: "no such flow".into(),
            });
        }
        noise
            .validate()
            .map_err(|reason| ModelError::InvalidNoise { flow, reason })?;
        if noise.is_empty() {
            self.noise.remove(&flow);
        } else {
            self.noise.insert(flow, noise);
        }
        Ok(())
    }

    /// The stochastic annotations of a flow, if any.
    pub fn flow_noise(&self, flow: FlowId) -> Option<&FlowNoise> {
        self.noise.get(&flow)
    }

    /// All stochastic annotations, in flow order.
    pub fn noise(&self) -> impl Iterator<Item = (FlowId, &FlowNoise)> + '_ {
        self.noise.iter().map(|(k, v)| (*k, v))
    }

    /// `true` when any flow carries a distribution.
    pub fn is_stochastic(&self) -> bool {
        !self.noise.is_empty()
    }

    /// Drop every stochastic annotation.
    pub fn clear_noise(&mut self) {
        self.noise.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> (Application, ProcessId, ProcessId, ProcessId) {
        let mut app = Application::new("chain");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::final_("C"));
        app.add_flow(Flow::new(a, b, 72, 1, 100)).unwrap();
        app.add_flow(Flow::new(b, c, 36, 2, 50)).unwrap();
        (app, a, b, c)
    }

    #[test]
    fn packages_round_up() {
        let f = Flow::new(ProcessId(0), ProcessId(1), 576, 1, 250);
        assert_eq!(f.packages(36), 16);
        assert_eq!(f.packages(18), 32);
        assert_eq!(f.packages(100), 6); // 576/100 -> 6 packages
        assert_eq!(
            Flow::new(ProcessId(0), ProcessId(1), 1, 1, 1).packages(36),
            1
        );
    }

    #[test]
    fn add_flow_validates() {
        let mut app = Application::new("t");
        let a = app.add_process(Process::new("A"));
        let b = app.add_process(Process::new("B"));
        assert!(app.add_flow(Flow::new(a, b, 10, 1, 1)).is_ok());
        assert_eq!(
            app.add_flow(Flow::new(a, a, 10, 1, 1)),
            Err(ModelError::SelfFlow(a))
        );
        assert_eq!(
            app.add_flow(Flow::new(a, b, 0, 1, 1)),
            Err(ModelError::EmptyFlow { src: a, dst: b })
        );
        assert_eq!(
            app.add_flow(Flow::new(a, ProcessId(9), 1, 1, 1)),
            Err(ModelError::UnknownProcess(ProcessId(9)))
        );
    }

    #[test]
    fn sources_sinks_and_lookup() {
        let (app, a, b, c) = chain3();
        assert_eq!(app.sources(), vec![a]);
        assert_eq!(app.sinks(), vec![c]);
        assert_eq!(app.process_by_name("B"), Some(b));
        assert_eq!(app.process_by_name("Z"), None);
        assert_eq!(app.inputs_of(b).count(), 1);
        assert_eq!(app.outputs_of(b).count(), 1);
        assert_eq!(app.total_items(), 108);
        assert_eq!(app.total_packages(36), 3);
    }

    #[test]
    fn waves_group_by_order_ascending() {
        let mut app = Application::new("w");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::new("C"));
        let d = app.add_process(Process::final_("D"));
        app.add_flow(Flow::new(a, b, 36, 1, 1)).unwrap();
        app.add_flow(Flow::new(a, c, 36, 1, 1)).unwrap();
        app.add_flow(Flow::new(b, d, 36, 2, 1)).unwrap();
        app.add_flow(Flow::new(c, d, 36, 2, 1)).unwrap();
        let waves = app.waves();
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].order, 1);
        assert_eq!(waves[0].flows.len(), 2);
        assert_eq!(waves[1].order, 2);
        assert!(app.orders_respect_dependencies());
        assert_eq!(app.max_order(), 2);
    }

    #[test]
    fn bad_ordering_detected() {
        let mut app = Application::new("w");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::final_("C"));
        app.add_flow(Flow::new(a, b, 36, 2, 1)).unwrap();
        app.add_flow(Flow::new(b, c, 36, 1, 1)).unwrap(); // before its input
        assert!(!app.orders_respect_dependencies());
    }

    #[test]
    fn topological_order_assignment() {
        let mut app = Application::new("w");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::new("C"));
        let d = app.add_process(Process::final_("D"));
        app.add_flow(Flow::new(a, b, 36, 0, 1)).unwrap();
        app.add_flow(Flow::new(b, c, 36, 0, 1)).unwrap();
        app.add_flow(Flow::new(a, c, 36, 0, 1)).unwrap();
        app.add_flow(Flow::new(c, d, 36, 0, 1)).unwrap();
        app.assign_orders_topologically().unwrap();
        assert!(app.orders_respect_dependencies());
        assert_eq!(app.flow(FlowId(0)).order, 1); // A->B
        assert_eq!(app.flow(FlowId(1)).order, 2); // B->C
        assert_eq!(app.flow(FlowId(2)).order, 1); // A->C
        assert_eq!(app.flow(FlowId(3)).order, 3); // C->D
    }

    #[test]
    fn topological_assignment_rejects_cycles() {
        let mut app = Application::new("cyc");
        let a = app.add_process(Process::new("A"));
        let b = app.add_process(Process::new("B"));
        app.add_flow(Flow::new(a, b, 1, 1, 1)).unwrap();
        app.add_flow(Flow::new(b, a, 1, 2, 1)).unwrap();
        assert!(app.assign_orders_topologically().is_err());
    }

    #[test]
    fn cost_model_per_item_scales() {
        let cm = CostModel::per_item(36).unwrap();
        assert_eq!(cm.ticks_per_package(250, 36), 250);
        assert_eq!(cm.ticks_per_package(250, 18), 125);
        assert_eq!(cm.ticks_per_package(250, 72), 500);
        // rounding: 250 * 24 / 36 = 166.67 -> 167
        assert_eq!(cm.ticks_per_package(250, 24), 167);
        let pp = CostModel::PerPackage;
        assert_eq!(pp.ticks_per_package(250, 18), 250);
    }

    #[test]
    fn cost_model_affine_interpolates() {
        let cm = CostModel::affine(40, 36).unwrap();
        // At the reference size the annotated cost is returned verbatim.
        assert_eq!(cm.ticks_per_package(250, 36), 250);
        // Halving the size halves only the variable part: 40 + 105 = 145.
        assert_eq!(cm.ticks_per_package(250, 18), 145);
        // Doubling: 40 + 420 = 460.
        assert_eq!(cm.ticks_per_package(250, 72), 460);
        // Cost below the base degrades gracefully to the base.
        assert_eq!(cm.ticks_per_package(10, 18), 40);
    }

    #[test]
    fn default_cost_model_is_per_item_at_36() {
        assert_eq!(CostModel::default(), CostModel::per_item(36).unwrap());
        // Zero references are unrepresentable (C007 moved into the type).
        assert_eq!(CostModel::per_item(0), None);
        assert_eq!(CostModel::affine(5, 0), None);
    }
}
