//! Probabilistic PSDF extensions: distributions on flow parameters and
//! seeded sampling of concrete models.
//!
//! The paper estimates one deterministic schedule, but real SegBus traffic
//! is stochastic. This module lets a flow carry *distributions* instead of
//! (or rather, alongside) its point values:
//!
//! * `items_dist` — a distribution on the flow's data volume `D`;
//! * `ticks_dist` — a distribution on the per-package compute cost `C`;
//! * `jitter`     — extra per-package arrival delay added on top of the
//!   (possibly sampled) `C`, modelling variable production latency.
//!
//! The annotations are carried as a *sidecar* on [`Application`]
//! ([`Application::set_flow_noise`]) so the base model stays a perfectly
//! ordinary deterministic PSM: every existing command runs it unchanged,
//! and [`crate::digest`] deliberately ignores the annotations — only
//! *sampled* (concrete) models are ever emulated or cached.
//!
//! # Determinism contract
//!
//! [`sample_psm`] maps `(model, seed)` to one concrete [`Psm`] through a
//! single [`SmallRng`] stream: flows are visited in [`FlowId`] order and
//! each flow draws in the fixed order *items → ticks → jitter*, drawing
//! **only** for the distributions that are present. The stream, the visit
//! order and the draw order are part of the workspace determinism
//! contract (pinned by golden tests); changing any of them silently
//! re-samples every committed corpus file and every seeded experiment.
//! Monte-Carlo sample `i` of master seed `s` uses [`mix_seed`]`(s, i)`.

use std::fmt;

use crate::error::ModelError;
use crate::ids::FlowId;
use crate::mapping::Psm;
use crate::psdf::{Application, Flow};
use crate::rng::SmallRng;

/// A distribution over unsigned integer values (items, ticks, jitter).
#[derive(Clone, PartialEq, Debug)]
pub enum Dist {
    /// Always `value`. Useful to override a base value in a corpus family
    /// without widening it.
    Constant(u64),
    /// Uniform over the inclusive range `[lo, hi]`.
    Uniform {
        /// Smallest value (inclusive).
        lo: u64,
        /// Largest value (inclusive).
        hi: u64,
    },
    /// Normal with `mean`/`std`, sampled by Box–Muller and clamped into
    /// the inclusive `[lo, hi]` before rounding to an integer.
    Normal {
        /// Mean of the underlying normal.
        mean: u64,
        /// Standard deviation of the underlying normal.
        std: u64,
        /// Clamp floor (inclusive).
        lo: u64,
        /// Clamp ceiling (inclusive).
        hi: u64,
    },
    /// Discrete weighted choice over `(value, weight)` pairs; a value is
    /// drawn with probability `weight / Σ weights`.
    Choice(Vec<(u64, u64)>),
}

impl Dist {
    /// The smallest value this distribution can produce.
    pub fn min_value(&self) -> u64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, .. } | Dist::Normal { lo, .. } => *lo,
            Dist::Choice(pairs) => pairs
                .iter()
                .filter(|(_, w)| *w > 0)
                .map(|(v, _)| *v)
                .min()
                .unwrap_or(0),
        }
    }

    /// Check the parameters, with `min` the smallest value the position
    /// may produce (1 for an items distribution — a sampled flow must not
    /// be empty — and 0 for ticks/jitter). Returns a human-readable reason
    /// on failure; the front ends wrap it in their own `P007`/`X004`
    /// diagnostics and [`Application::set_flow_noise`] in
    /// [`ModelError::InvalidNoise`].
    pub fn validate(&self, min: u64) -> Result<(), String> {
        match self {
            Dist::Constant(_) => {}
            Dist::Uniform { lo, hi } | Dist::Normal { lo, hi, .. } => {
                if lo > hi {
                    return Err(format!("range is inverted ({lo} > {hi})"));
                }
            }
            Dist::Choice(pairs) => {
                if pairs.is_empty() {
                    return Err("choice has no alternatives".into());
                }
                let total: u128 = pairs.iter().map(|(_, w)| *w as u128).sum();
                if total == 0 {
                    return Err("choice weights sum to zero".into());
                }
                if total > u64::MAX as u128 {
                    return Err("choice weights overflow".into());
                }
            }
        }
        if self.min_value() < min {
            return Err(format!(
                "may produce {} but the minimum here is {min}",
                self.min_value()
            ));
        }
        Ok(())
    }

    /// Draw one value. The parameters must have passed [`Dist::validate`];
    /// sampling is total on validated distributions and NaN-free.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => rng.range_u64(*lo, *hi),
            Dist::Normal { mean, std, lo, hi } => {
                // Box–Muller. `u1 = 1 - gen_f64()` lies in (0, 1], so the
                // logarithm is finite and the result can never be NaN.
                let u1 = 1.0 - rng.gen_f64();
                let u2 = rng.gen_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let x = *mean as f64 + z * *std as f64;
                x.clamp(*lo as f64, *hi as f64).round() as u64
            }
            Dist::Choice(pairs) => {
                let total: u64 = pairs.iter().map(|(_, w)| *w).sum();
                let mut pick = rng.below(total);
                for (v, w) in pairs {
                    if pick < *w {
                        return *v;
                    }
                    pick -= w;
                }
                pairs[pairs.len() - 1].0
            }
        }
    }

    /// Compact string form used by the XML front end and the corpus
    /// manifest: `constant:5`, `uniform:300:400`, `normal:100:15:60:140`,
    /// `choice:0:3:10:1`.
    pub fn encode(&self) -> String {
        match self {
            Dist::Constant(v) => format!("constant:{v}"),
            Dist::Uniform { lo, hi } => format!("uniform:{lo}:{hi}"),
            Dist::Normal { mean, std, lo, hi } => format!("normal:{mean}:{std}:{lo}:{hi}"),
            Dist::Choice(pairs) => {
                let mut s = String::from("choice");
                for (v, w) in pairs {
                    s.push_str(&format!(":{v}:{w}"));
                }
                s
            }
        }
    }

    /// Parse the [`Dist::encode`] form. Returns a human-readable reason on
    /// failure (shape only — call [`Dist::validate`] for parameter checks).
    pub fn decode(s: &str) -> Result<Dist, String> {
        let mut parts = s.split(':');
        let kind = parts.next().unwrap_or("");
        let nums: Vec<u64> = parts
            .map(|p| {
                p.parse::<u64>()
                    .map_err(|_| format!("{p:?} is not a non-negative integer"))
            })
            .collect::<Result<_, _>>()?;
        match (kind, nums.len()) {
            ("constant", 1) => Ok(Dist::Constant(nums[0])),
            ("uniform", 2) => Ok(Dist::Uniform {
                lo: nums[0],
                hi: nums[1],
            }),
            ("normal", 4) => Ok(Dist::Normal {
                mean: nums[0],
                std: nums[1],
                lo: nums[2],
                hi: nums[3],
            }),
            ("choice", n) if n >= 2 && n % 2 == 0 => {
                Ok(Dist::Choice(nums.chunks(2).map(|c| (c[0], c[1])).collect()))
            }
            ("constant" | "uniform" | "normal" | "choice", n) => {
                Err(format!("wrong number of parameters for {kind} ({n})"))
            }
            _ => Err(format!("unknown distribution {kind:?}")),
        }
    }
}

impl fmt::Display for Dist {
    /// The DSL surface form: the [`Dist::encode`] string with spaces
    /// instead of colons (`uniform 300 400`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode().replace(':', " "))
    }
}

/// The stochastic annotations of one flow. All fields optional; an absent
/// distribution means the flow's base value is used verbatim.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FlowNoise {
    /// Distribution on the data volume `D` (replaces `items` when drawn).
    pub items: Option<Dist>,
    /// Distribution on the per-package cost `C` (replaces `ticks`).
    pub ticks: Option<Dist>,
    /// Per-package arrival jitter, *added* to the (possibly sampled) `C`.
    pub jitter: Option<Dist>,
}

impl FlowNoise {
    /// `true` when no distribution is present.
    pub fn is_empty(&self) -> bool {
        self.items.is_none() && self.ticks.is_none() && self.jitter.is_none()
    }

    /// Validate every present distribution with its positional minimum
    /// (items ≥ 1 — an empty flow is unrepresentable — ticks/jitter ≥ 0).
    pub fn validate(&self) -> Result<(), String> {
        if let Some(d) = &self.items {
            d.validate(1).map_err(|e| format!("items_dist: {e}"))?;
        }
        if let Some(d) = &self.ticks {
            d.validate(0).map_err(|e| format!("ticks_dist: {e}"))?;
        }
        if let Some(d) = &self.jitter {
            d.validate(0).map_err(|e| format!("jitter: {e}"))?;
        }
        Ok(())
    }
}

/// Derive the per-sample seed for Monte-Carlo sample `index` of `master`
/// (a SplitMix64 step over the mixed pair, so neighbouring indices land in
/// unrelated parts of the stream).
pub fn mix_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sample the application's stochastic annotations into concrete flow
/// values. Flows are visited in [`FlowId`] order; each annotated flow
/// draws *items → ticks → jitter* from one stream seeded with `seed`.
/// The result carries no annotations (it is a plain deterministic model)
/// and digests like any hand-written one.
pub fn sample_application(app: &Application, seed: u64) -> Result<Application, ModelError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Application::new(app.name()).with_cost_model(app.cost_model());
    for p in app.processes() {
        out.add_process(p.clone());
    }
    for (i, f) in app.flows().iter().enumerate() {
        let id = FlowId(i as u32);
        let mut items = f.items;
        let mut ticks = f.ticks;
        if let Some(noise) = app.flow_noise(id) {
            noise
                .validate()
                .map_err(|reason| ModelError::InvalidNoise { flow: id, reason })?;
            if let Some(d) = &noise.items {
                items = d.sample(&mut rng);
            }
            if let Some(d) = &noise.ticks {
                ticks = d.sample(&mut rng);
            }
            if let Some(d) = &noise.jitter {
                ticks = ticks.saturating_add(d.sample(&mut rng));
            }
        }
        out.add_flow(Flow::new(f.src, f.dst, items, f.order, ticks))?;
    }
    Ok(out)
}

/// Sample a complete PSM: [`sample_application`] plus the unchanged
/// platform and allocation, re-validated as a whole.
pub fn sample_psm(psm: &Psm, seed: u64) -> Result<Psm, ModelError> {
    let app = sample_application(psm.application(), seed)?;
    Psm::new(psm.platform().clone(), app, psm.allocation().clone())
}

/// FNV-1a digest of the stochastic annotations alone (the base
/// [`crate::digest`] deliberately excludes them). Two corpus entries with
/// equal [`Psm::digest`] *and* equal noise digest are true duplicates.
pub fn noise_digest(app: &Application) -> u64 {
    let mut h = crate::digest::Fnv64::new();
    h.write_u8(0x20);
    for (id, noise) in app.noise() {
        h.write_u32(id.0);
        for (tag, d) in [
            (0x21u8, &noise.items),
            (0x22, &noise.ticks),
            (0x23, &noise.jitter),
        ] {
            if let Some(d) = d {
                h.write_u8(tag);
                let enc = d.encode();
                h.write_u32(enc.len() as u32);
                h.write_bytes(enc.as_bytes());
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SegmentId;
    use crate::mapping::Allocation;
    use crate::platform::Platform;
    use crate::psdf::Process;
    use crate::time::ClockDomain;

    fn noisy_psm() -> Psm {
        let mut app = Application::new("noisy");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::final_("C"));
        let f0 = app.add_flow(Flow::new(a, b, 360, 1, 100)).unwrap();
        let f1 = app.add_flow(Flow::new(b, c, 180, 2, 50)).unwrap();
        app.set_flow_noise(
            f0,
            FlowNoise {
                items: Some(Dist::Uniform { lo: 300, hi: 400 }),
                ticks: Some(Dist::Normal {
                    mean: 100,
                    std: 15,
                    lo: 60,
                    hi: 140,
                }),
                jitter: None,
            },
        )
        .unwrap();
        app.set_flow_noise(
            f1,
            FlowNoise {
                items: None,
                ticks: None,
                jitter: Some(Dist::Choice(vec![(0, 3), (10, 1)])),
            },
        )
        .unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        alloc.assign(c, SegmentId(1));
        let platform = Platform::builder("t")
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        Psm::new(platform, app, alloc).unwrap()
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let psm = noisy_psm();
        let a = sample_psm(&psm, 7).unwrap();
        let b = sample_psm(&psm, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = sample_psm(&psm, 8).unwrap();
        assert_ne!(
            a.application().flows(),
            c.application().flows(),
            "different seeds draw different values"
        );
    }

    #[test]
    fn sampled_values_respect_ranges() {
        let psm = noisy_psm();
        for seed in 0..200 {
            let s = sample_psm(&psm, seed).unwrap();
            let flows = s.application().flows();
            assert!((300..=400).contains(&flows[0].items), "{}", flows[0].items);
            assert!((60..=140).contains(&flows[0].ticks), "{}", flows[0].ticks);
            assert_eq!(flows[1].items, 180, "no items dist on flow 1");
            assert!(
                flows[1].ticks == 50 || flows[1].ticks == 60,
                "jitter adds 0 or 10: {}",
                flows[1].ticks
            );
            assert!(!s.application().is_stochastic(), "samples are concrete");
        }
    }

    #[test]
    fn deterministic_model_samples_to_itself() {
        let mut app = Application::new("det");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 72, 1, 10)).unwrap();
        let out = sample_application(&app, 99).unwrap();
        assert_eq!(app, out);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(Dist::Uniform { lo: 5, hi: 4 }.validate(0).is_err());
        assert!(Dist::Choice(vec![]).validate(0).is_err());
        assert!(Dist::Choice(vec![(1, 0)]).validate(0).is_err());
        // An items distribution must not be able to produce zero.
        assert!(Dist::Uniform { lo: 0, hi: 9 }.validate(1).is_err());
        assert!(Dist::Constant(0).validate(1).is_err());
        assert!(Dist::Normal {
            mean: 5,
            std: 1,
            lo: 0,
            hi: 9
        }
        .validate(1)
        .is_err());
        // Zero-weight alternatives are ignored by min_value.
        assert!(Dist::Choice(vec![(0, 0), (3, 1)]).validate(1).is_ok());
        assert!(Dist::Uniform { lo: 1, hi: 1 }.validate(1).is_ok());
    }

    #[test]
    fn normal_is_clamped_and_nan_free() {
        let d = Dist::Normal {
            mean: 100,
            std: 40,
            lo: 80,
            hi: 120,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = d.sample(&mut rng);
            assert!((80..=120).contains(&v), "{v}");
        }
        // Degenerate clamp window: always the single admissible value.
        let tight = Dist::Normal {
            mean: 0,
            std: 1_000_000,
            lo: 7,
            hi: 7,
        };
        assert_eq!(tight.sample(&mut rng), 7);
    }

    #[test]
    fn choice_tracks_weights() {
        let d = Dist::Choice(vec![(1, 3), (2, 1)]);
        let mut rng = SmallRng::seed_from_u64(11);
        let ones = (0..4000).filter(|_| d.sample(&mut rng) == 1).count();
        assert!((2700..3300).contains(&ones), "~3000 expected, got {ones}");
    }

    #[test]
    fn encode_decode_round_trips() {
        for d in [
            Dist::Constant(5),
            Dist::Uniform { lo: 300, hi: 400 },
            Dist::Normal {
                mean: 100,
                std: 15,
                lo: 60,
                hi: 140,
            },
            Dist::Choice(vec![(0, 3), (10, 1)]),
        ] {
            assert_eq!(Dist::decode(&d.encode()).unwrap(), d);
        }
        assert!(Dist::decode("uniform:3").is_err());
        assert!(Dist::decode("choice:1").is_err());
        assert!(Dist::decode("poisson:4").is_err());
        assert!(Dist::decode("uniform:a:b").is_err());
    }

    /// Golden vectors: the seeded sampling stream is a determinism
    /// contract. If this test fails, every committed corpus file and every
    /// seeded experiment silently re-samples — bump the corpus and the
    /// docs, do not just update the numbers.
    #[test]
    fn pinned_sampling_golden_vectors() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        assert_eq!(
            [rng.next_u64(), rng.next_u64(), rng.next_u64()],
            [
                1256854334177827233,
                5392029431272537335,
                9605439178696550982
            ]
        );
        let psm = noisy_psm();
        let s = sample_psm(&psm, 42).unwrap();
        let flows = s.application().flows();
        assert_eq!(
            (flows[0].items, flows[0].ticks, flows[1].ticks),
            (354, 81, 60)
        );
        assert_eq!(mix_seed(42, 0), 13679457532755275413);
        assert_eq!(mix_seed(42, 1), 2949826092126892291);
    }

    #[test]
    fn noise_digest_separates_annotations() {
        let psm = noisy_psm();
        let mut plain = psm.application().clone();
        plain.clear_noise();
        assert_ne!(noise_digest(psm.application()), noise_digest(&plain));
        // Base digest ignores the annotations entirely.
        let alloc = psm.allocation().clone();
        let noisy_digest = psm.digest();
        let stripped = Psm::new(psm.platform().clone(), plain, alloc).unwrap();
        assert_eq!(noisy_digest, stripped.digest());
    }
}
