//! Error type shared by model construction and validation.

use std::fmt;

use crate::ids::{FlowId, ProcessId, SegmentId};

/// Errors raised while building or combining model entities.
///
/// Structural-constraint violations discovered by the full validation pass
/// are reported as [`crate::validate::Diagnostic`]s instead; `ModelError`
/// covers hard errors that make an object unrepresentable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// A flow references a process id that does not exist in the application.
    UnknownProcess(ProcessId),
    /// An allocation references a segment id outside the platform.
    UnknownSegment(SegmentId),
    /// A flow carries zero data items.
    EmptyFlow {
        /// The flow's source process.
        src: ProcessId,
        /// The flow's destination process.
        dst: ProcessId,
    },
    /// A flow connects a process to itself.
    SelfFlow(ProcessId),
    /// Two processes in one application share a name.
    DuplicateProcessName(String),
    /// The platform has no segments.
    NoSegments,
    /// A ring topology needs at least three segments.
    RingTooSmall(usize),
    /// The platform package size is zero.
    ZeroPackageSize,
    /// A process in the application has not been assigned to any segment.
    Unplaced(ProcessId),
    /// A stochastic annotation on a flow is unusable (empty choice,
    /// inverted range, items distribution able to produce zero, …).
    InvalidNoise {
        /// The annotated flow.
        flow: FlowId,
        /// What is wrong with the distribution.
        reason: String,
    },
    /// The application/platform pair failed full validation.
    Invalid {
        /// Number of error-severity diagnostics produced.
        errors: usize,
        /// First error message, for context.
        first: String,
        /// Stable `V0xx` code of the first failed constraint.
        first_code: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            ModelError::UnknownSegment(s) => write!(f, "unknown segment {s}"),
            ModelError::EmptyFlow { src, dst } => {
                write!(f, "flow {src} -> {dst} carries zero data items")
            }
            ModelError::SelfFlow(p) => write!(f, "flow from {p} to itself"),
            ModelError::DuplicateProcessName(n) => {
                write!(f, "duplicate process name {n:?}")
            }
            ModelError::NoSegments => write!(f, "platform has no segments"),
            ModelError::RingTooSmall(n) => {
                write!(f, "a ring topology needs at least 3 segments, got {n}")
            }
            ModelError::ZeroPackageSize => write!(f, "package size must be non-zero"),
            ModelError::Unplaced(p) => write!(f, "process {p} is not placed on any segment"),
            ModelError::InvalidNoise { flow, reason } => {
                write!(f, "invalid distribution on flow {flow}: {reason}")
            }
            ModelError::Invalid { errors, first, .. } => {
                write!(
                    f,
                    "model failed validation with {errors} error(s); first: {first}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ModelError::UnknownProcess(ProcessId(3)).to_string(),
            "unknown process P3"
        );
        assert_eq!(
            ModelError::SelfFlow(ProcessId(1)).to_string(),
            "flow from P1 to itself"
        );
        assert!(ModelError::Invalid {
            errors: 2,
            first: "boom".into(),
            first_code: "V001",
        }
        .to_string()
        .contains("2 error(s)"));
    }
}
