//! A tiny, dependency-free, deterministic pseudo-random number generator.
//!
//! The workspace must build with no network access, so it cannot pull in
//! the `rand` crate. The seeded generators (`segbus-apps::generators`),
//! the simulated-annealing placement solver (`segbus-place`) and the
//! seeded-loop property tests only need a small, fast, *reproducible*
//! stream — not cryptographic quality — which an xorshift64* generator
//! seeded through SplitMix64 provides (Vigna, "An experimental exploration
//! of Marsaglia's xorshift generators, scrambled").
//!
//! The stream is part of the workspace's determinism contract: tests
//! assert exact outputs of seeded runs, so changing the algorithm is a
//! breaking change to every seeded experiment.

/// A small deterministic PRNG: xorshift64* seeded via SplitMix64.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Create a generator from a 64-bit seed. Any seed is fine, including
    /// zero (SplitMix64 whitening guarantees a non-zero xorshift state).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        // One SplitMix64 step spreads low-entropy seeds over the state
        // space and maps seed 0 away from the xorshift fixed point.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SmallRng {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)` without modulo bias (rejection sampling).
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Reject the final partial block so every residue is equally likely.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: {lo} > {hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A biased coin: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SmallRng::seed_from_u64(0);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
        assert_ne!(v[0], v[1]);
    }

    #[test]
    fn below_stays_in_range_and_hits_everything() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..400 {
            let v = r.range_u64(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(r.range_u64(5, 5), 5, "degenerate range");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..2000).filter(|_| r.gen_bool(0.25)).count();
        assert!((350..650).contains(&hits), "~500 expected, got {hits}");
        assert!(!SmallRng::seed_from_u64(1).gen_bool(0.0));
        assert!(SmallRng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_rejected() {
        let _ = SmallRng::seed_from_u64(1).below(0);
    }
}
