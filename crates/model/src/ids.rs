//! Strongly-typed identifiers for model entities.
//!
//! All identifiers are small dense indices (`u16`/`u32` underneath) so they
//! can be used directly as vector indices inside the simulation engines
//! without hashing.

use std::fmt;

/// Identifier of an application process (`P0`, `P1`, … in the paper).
///
/// Process ids are dense indices into [`crate::psdf::Application::processes`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub u32);

/// Identifier of a platform segment. Segments are numbered left-to-right
/// starting at `0` in a linear topology (the paper numbers them from 1; the
/// [`fmt::Display`] impl uses the paper's 1-based convention).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SegmentId(pub u16);

/// Identifier of a packet flow, dense index into
/// [`crate::psdf::Application::flows`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FlowId(pub u32);

impl ProcessId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SegmentId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Number of segment-to-segment hops between `self` and `other` in a
    /// linear topology (`|a - b|`).
    #[inline]
    pub fn hops_to(self, other: SegmentId) -> u16 {
        self.0.abs_diff(other.0)
    }
}

impl FlowId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper convention: segments are 1-based ("Segment 1").
        write!(f, "Segment {}", self.0 + 1)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

impl From<u16> for SegmentId {
    fn from(v: u16) -> Self {
        SegmentId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_conventions() {
        assert_eq!(ProcessId(0).to_string(), "P0");
        assert_eq!(ProcessId(14).to_string(), "P14");
        assert_eq!(SegmentId(0).to_string(), "Segment 1");
        assert_eq!(SegmentId(2).to_string(), "Segment 3");
        assert_eq!(FlowId(3).to_string(), "F3");
    }

    #[test]
    fn hops_are_symmetric() {
        assert_eq!(SegmentId(0).hops_to(SegmentId(2)), 2);
        assert_eq!(SegmentId(2).hops_to(SegmentId(0)), 2);
        assert_eq!(SegmentId(1).hops_to(SegmentId(1)), 0);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(SegmentId(0) < SegmentId(1));
    }
}
