//! Platform instances: segments, border units and the central arbiter.
//!
//! A SegBus platform (paper §2.1) is a collection of bus *segments*
//! interconnected by FIFO-like *border units* (BU). Each segment hosts a
//! local *segment arbiter* (SA) plus the functional units mapped onto it;
//! a single *central arbiter* (CA) orchestrates inter-segment transfers.
//!
//! Every segment and the CA run in independent clock domains.

use std::fmt;

use crate::error::ModelError;
use crate::ids::SegmentId;
use crate::time::ClockDomain;

/// Physical arrangement of segments.
///
/// The paper's experiments use a linear topology exclusively; the ring
/// variant (discussed in the wider SegBus literature) closes the line with
/// one extra border unit between the last and the first segment, and
/// packages travel the shorter way around.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Topology {
    /// Segments in a line; segment `i` borders `i-1` and `i+1`.
    #[default]
    Linear,
    /// Segments in a closed ring; requires at least three segments.
    Ring,
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Topology::Linear => "linear",
            Topology::Ring => "ring",
        })
    }
}

/// One bus segment: a name and a clock domain. The SA is implicit (exactly
/// one per segment, a structural invariant of the platform).
#[derive(Clone, PartialEq, Debug)]
pub struct Segment {
    /// Human-readable name (`"Segment 1"` style names come from
    /// [`SegmentId`]'s `Display`; this is the model-level identifier).
    pub name: String,
    /// The segment's clock domain.
    pub clock: ClockDomain,
}

/// Reference to the border unit between two adjacent segments.
///
/// The paper names the unit between segments *x* and *y* `BUxy` with 1-based
/// segment numbers (`BU12`, `BU23`, …). In a linear topology `left` is the
/// lower-numbered neighbour; a ring's wrap-around unit has
/// `left = n-1, right = 0` (printed e.g. `BU41` on four segments).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BorderUnitRef {
    /// The `left.0`-indexed neighbour (lower-numbered except on the wrap
    /// unit of a ring).
    pub left: SegmentId,
    /// The other neighbour (`left + 1`, or segment 0 on the wrap unit).
    pub right: SegmentId,
}

impl BorderUnitRef {
    /// The border unit on the right side of `left` in a linear topology.
    pub fn right_of(left: SegmentId) -> BorderUnitRef {
        BorderUnitRef {
            left,
            right: SegmentId(left.0 + 1),
        }
    }

    /// The ring's wrap-around unit between the last segment and segment 0.
    pub fn wrap(last: SegmentId) -> BorderUnitRef {
        BorderUnitRef {
            left: last,
            right: SegmentId(0),
        }
    }

    /// Higher-numbered adjacent segment (segment 0 for the wrap unit).
    #[inline]
    pub fn right(&self) -> SegmentId {
        self.right
    }

    /// Dense index of this BU (equals `left.0`): BU `i` sits between
    /// segments `i` and `i+1` (the wrap unit of an `n`-ring has index
    /// `n-1`).
    #[inline]
    pub fn index(&self) -> usize {
        self.left.index()
    }

    /// The neighbour on the other side of `seg`, if `seg` touches this BU.
    #[inline]
    pub fn other_side(&self, seg: SegmentId) -> Option<SegmentId> {
        if seg == self.left {
            Some(self.right)
        } else if seg == self.right {
            Some(self.left)
        } else {
            None
        }
    }
}

impl fmt::Display for BorderUnitRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper naming: BU12 between Segment 1 and Segment 2.
        write!(f, "BU{}{}", self.left.0 + 1, self.right.0 + 1)
    }
}

/// A complete platform configuration (the structural half of the PSM).
#[derive(Clone, PartialEq, Debug)]
pub struct Platform {
    name: String,
    topology: Topology,
    segments: Vec<Segment>,
    ca_clock: ClockDomain,
    package_size: u32,
}

impl Platform {
    /// Start building a platform.
    pub fn builder(name: impl Into<String>) -> PlatformBuilder {
        PlatformBuilder {
            name: name.into(),
            topology: Topology::Linear,
            segments: Vec::new(),
            ca_clock: None,
            package_size: 36,
        }
    }

    /// The platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The physical topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// All segments, indexable by [`SegmentId`].
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Look up a segment.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// Clock domain of a segment.
    pub fn segment_clock(&self, id: SegmentId) -> ClockDomain {
        self.segments[id.index()].clock
    }

    /// The central arbiter's clock domain.
    pub fn ca_clock(&self) -> ClockDomain {
        self.ca_clock
    }

    /// Package size in data items (`s` in the paper).
    pub fn package_size(&self) -> u32 {
        self.package_size
    }

    /// Return a copy with a different package size (the paper's 18-vs-36
    /// experiment keeps everything else fixed).
    pub fn with_package_size(&self, s: u32) -> Result<Platform, ModelError> {
        if s == 0 {
            return Err(ModelError::ZeroPackageSize);
        }
        let mut p = self.clone();
        p.package_size = s;
        Ok(p)
    }

    /// Border units in index order: `BU12`, `BU23`, … (`n − 1` units in a
    /// linear topology, `n` in a ring whose last unit wraps back to
    /// segment 1).
    pub fn border_units(&self) -> impl Iterator<Item = BorderUnitRef> + '_ {
        let n = self.segments.len();
        (0..self.border_unit_count() as u16).map(move |i| {
            if (i as usize) == n - 1 {
                BorderUnitRef::wrap(SegmentId(i))
            } else {
                BorderUnitRef::right_of(SegmentId(i))
            }
        })
    }

    /// Number of border units.
    pub fn border_unit_count(&self) -> usize {
        match self.topology {
            Topology::Linear => self.segments.len().saturating_sub(1),
            Topology::Ring => self.segments.len(),
        }
    }

    /// Hop distance between two segments under this topology.
    pub fn hops(&self, a: SegmentId, b: SegmentId) -> u16 {
        let d = a.hops_to(b);
        match self.topology {
            Topology::Linear => d,
            Topology::Ring => d.min(self.segments.len() as u16 - d),
        }
    }

    /// The border unit between two *adjacent* segments, if they are adjacent.
    pub fn bu_between(&self, a: SegmentId, b: SegmentId) -> Option<BorderUnitRef> {
        let n = self.segments.len() as u16;
        if a.hops_to(b) == 1 {
            return Some(BorderUnitRef::right_of(SegmentId(a.0.min(b.0))));
        }
        if self.topology == Topology::Ring && a.hops_to(b) == n - 1 && (a.0 == 0 || b.0 == 0) {
            return Some(BorderUnitRef::wrap(SegmentId(n - 1)));
        }
        None
    }

    /// The border units a package crosses travelling from `from` to `to`
    /// (empty for an intra-segment transfer), in travel order.
    pub fn path_bus(&self, from: SegmentId, to: SegmentId) -> Vec<BorderUnitRef> {
        let segs = self.path_segments(from, to);
        segs.windows(2)
            .map(|w| self.bu_between(w[0], w[1]).expect("path hops are adjacent"))
            .collect()
    }

    /// The segments a package occupies travelling from `from` to `to`,
    /// inclusive of both endpoints, in travel order. Rings take the shorter
    /// way around (clockwise — ascending indices — on a tie).
    pub fn path_segments(&self, from: SegmentId, to: SegmentId) -> Vec<SegmentId> {
        match self.topology {
            Topology::Linear => {
                if from.0 <= to.0 {
                    (from.0..=to.0).map(SegmentId).collect()
                } else {
                    (to.0..=from.0).rev().map(SegmentId).collect()
                }
            }
            Topology::Ring => {
                let n = self.segments.len() as u16;
                if from == to {
                    return vec![from];
                }
                let cw = (to.0 + n - from.0) % n; // hops going clockwise
                let ccw = n - cw;
                let mut out = Vec::with_capacity(self.hops(from, to) as usize + 1);
                let mut cur = from.0;
                if cw <= ccw {
                    for _ in 0..=cw {
                        out.push(SegmentId(cur));
                        cur = (cur + 1) % n;
                    }
                } else {
                    for _ in 0..=ccw {
                        out.push(SegmentId(cur));
                        cur = (cur + n - 1) % n;
                    }
                }
                out
            }
        }
    }

    /// `true` if `id` is a valid segment of this platform.
    pub fn contains(&self, id: SegmentId) -> bool {
        id.index() < self.segments.len()
    }
}

/// Builder for [`Platform`]; see [`Platform::builder`].
#[derive(Clone, Debug)]
pub struct PlatformBuilder {
    name: String,
    topology: Topology,
    segments: Vec<Segment>,
    ca_clock: Option<ClockDomain>,
    package_size: u32,
}

impl PlatformBuilder {
    /// Set the topology (default: [`Topology::Linear`]).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Append a segment with the given clock.
    pub fn segment(mut self, name: impl Into<String>, clock: ClockDomain) -> Self {
        self.segments.push(Segment {
            name: name.into(),
            clock,
        });
        self
    }

    /// Append `n` segments sharing one clock, named `S1 … Sn` continuing
    /// from any already-added segments.
    pub fn uniform_segments(mut self, n: usize, clock: ClockDomain) -> Self {
        for _ in 0..n {
            let name = format!("S{}", self.segments.len() + 1);
            self.segments.push(Segment { name, clock });
        }
        self
    }

    /// Set the central arbiter's clock (defaults to the first segment's
    /// clock if unset).
    pub fn ca_clock(mut self, clock: ClockDomain) -> Self {
        self.ca_clock = Some(clock);
        self
    }

    /// Set the package size in data items (default 36, the paper's value).
    pub fn package_size(mut self, s: u32) -> Self {
        self.package_size = s;
        self
    }

    /// Finish, validating the structural invariants.
    pub fn build(self) -> Result<Platform, ModelError> {
        if self.segments.is_empty() {
            return Err(ModelError::NoSegments);
        }
        if self.topology == Topology::Ring && self.segments.len() < 3 {
            // A two-segment "ring" would need two parallel BUs between the
            // same pair; the platform does not support that.
            return Err(ModelError::RingTooSmall(self.segments.len()));
        }
        if self.package_size == 0 {
            return Err(ModelError::ZeroPackageSize);
        }
        let ca_clock = self.ca_clock.unwrap_or(self.segments[0].clock);
        Ok(Platform {
            name: self.name,
            topology: self.topology,
            segments: self.segments,
            ca_clock,
            package_size: self.package_size,
        })
    }
}

/// The paper's 3-segment experimental platform: clocks 91 / 98 / 89 MHz,
/// CA at 111 MHz, 36-item packages, linear topology.
pub fn paper_three_segment_platform() -> Platform {
    Platform::builder("SBP-3seg")
        .package_size(36)
        .ca_clock(ClockDomain::from_mhz(111.0))
        .segment("Segment1", ClockDomain::from_mhz(91.0))
        .segment("Segment2", ClockDomain::from_mhz(98.0))
        .segment("Segment3", ClockDomain::from_mhz(89.0))
        .build()
        .expect("paper platform is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plat(n: usize) -> Platform {
        Platform::builder("t")
            .uniform_segments(n, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            Platform::builder("e").build().unwrap_err(),
            ModelError::NoSegments
        );
        assert_eq!(
            Platform::builder("e")
                .uniform_segments(1, ClockDomain::from_mhz(100.0))
                .package_size(0)
                .build()
                .unwrap_err(),
            ModelError::ZeroPackageSize
        );
    }

    #[test]
    fn ca_clock_defaults_to_first_segment() {
        let p = plat(2);
        assert_eq!(p.ca_clock(), p.segment_clock(SegmentId(0)));
    }

    #[test]
    fn border_units_linear() {
        let p = plat(3);
        let bus: Vec<_> = p.border_units().collect();
        assert_eq!(bus.len(), 2);
        assert_eq!(bus[0].to_string(), "BU12");
        assert_eq!(bus[1].to_string(), "BU23");
        assert_eq!(bus[0].left, SegmentId(0));
        assert_eq!(bus[0].right(), SegmentId(1));
        assert_eq!(plat(1).border_unit_count(), 0);
    }

    #[test]
    fn bu_between_adjacent_only() {
        let p = plat(3);
        assert_eq!(
            p.bu_between(SegmentId(0), SegmentId(1)),
            Some(BorderUnitRef::right_of(SegmentId(0)))
        );
        assert_eq!(
            p.bu_between(SegmentId(1), SegmentId(0)),
            Some(BorderUnitRef::right_of(SegmentId(0)))
        );
        assert_eq!(p.bu_between(SegmentId(0), SegmentId(2)), None);
        assert_eq!(p.bu_between(SegmentId(1), SegmentId(1)), None);
    }

    #[test]
    fn paths_both_directions() {
        let p = plat(4);
        let right: Vec<String> = p
            .path_bus(SegmentId(0), SegmentId(3))
            .iter()
            .map(|b| b.to_string())
            .collect();
        assert_eq!(right, ["BU12", "BU23", "BU34"]);
        let left: Vec<String> = p
            .path_bus(SegmentId(3), SegmentId(1))
            .iter()
            .map(|b| b.to_string())
            .collect();
        assert_eq!(left, ["BU34", "BU23"]);
        assert!(p.path_bus(SegmentId(2), SegmentId(2)).is_empty());
        assert_eq!(
            p.path_segments(SegmentId(2), SegmentId(0)),
            vec![SegmentId(2), SegmentId(1), SegmentId(0)]
        );
        assert_eq!(
            p.path_segments(SegmentId(1), SegmentId(1)),
            vec![SegmentId(1)]
        );
    }

    #[test]
    fn with_package_size() {
        let p = plat(2);
        assert_eq!(p.with_package_size(18).unwrap().package_size(), 18);
        assert!(p.with_package_size(0).is_err());
        assert_eq!(p.package_size(), 36, "original untouched");
    }

    fn ring(n: usize) -> Platform {
        Platform::builder("r")
            .topology(Topology::Ring)
            .uniform_segments(n, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap()
    }

    #[test]
    fn ring_needs_three_segments() {
        let err = Platform::builder("r")
            .topology(Topology::Ring)
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::RingTooSmall(2));
        assert!(ring(3).border_unit_count() == 3);
    }

    #[test]
    fn ring_border_units_include_wrap() {
        let p = ring(4);
        let names: Vec<String> = p.border_units().map(|b| b.to_string()).collect();
        assert_eq!(names, ["BU12", "BU23", "BU34", "BU41"]);
        let wrap = p.border_units().last().unwrap();
        assert_eq!(wrap.left, SegmentId(3));
        assert_eq!(wrap.right(), SegmentId(0));
        assert_eq!(wrap.index(), 3);
        assert_eq!(wrap.other_side(SegmentId(0)), Some(SegmentId(3)));
        assert_eq!(wrap.other_side(SegmentId(1)), None);
    }

    #[test]
    fn ring_adjacency_wraps() {
        let p = ring(4);
        assert_eq!(
            p.bu_between(SegmentId(3), SegmentId(0)),
            Some(BorderUnitRef::wrap(SegmentId(3)))
        );
        assert_eq!(
            p.bu_between(SegmentId(0), SegmentId(3)),
            Some(BorderUnitRef::wrap(SegmentId(3)))
        );
        assert_eq!(p.bu_between(SegmentId(1), SegmentId(3)), None);
        // A linear platform never wraps.
        assert_eq!(plat(4).bu_between(SegmentId(3), SegmentId(0)), None);
    }

    #[test]
    fn ring_paths_take_the_short_way() {
        let p = ring(5);
        // 0 -> 4 wraps backwards: one hop.
        assert_eq!(
            p.path_segments(SegmentId(0), SegmentId(4)),
            vec![SegmentId(0), SegmentId(4)]
        );
        // 4 -> 1 wraps forwards: two hops.
        assert_eq!(
            p.path_segments(SegmentId(4), SegmentId(1)),
            vec![SegmentId(4), SegmentId(0), SegmentId(1)]
        );
        // Tie on an even ring goes clockwise.
        let p4 = ring(4);
        assert_eq!(
            p4.path_segments(SegmentId(0), SegmentId(2)),
            vec![SegmentId(0), SegmentId(1), SegmentId(2)]
        );
        assert_eq!(
            p.path_segments(SegmentId(2), SegmentId(2)),
            vec![SegmentId(2)]
        );
    }

    #[test]
    fn ring_hops_are_shorter() {
        let p = ring(6);
        assert_eq!(p.hops(SegmentId(0), SegmentId(5)), 1);
        assert_eq!(p.hops(SegmentId(0), SegmentId(3)), 3);
        assert_eq!(p.hops(SegmentId(1), SegmentId(4)), 3);
        assert_eq!(p.hops(SegmentId(0), SegmentId(4)), 2);
        // Linear distances are unchanged.
        assert_eq!(plat(6).hops(SegmentId(0), SegmentId(5)), 5);
    }

    #[test]
    fn ring_path_bus_crosses_wrap_unit() {
        let p = ring(4);
        let bus: Vec<String> = p
            .path_bus(SegmentId(3), SegmentId(1))
            .iter()
            .map(|b| b.to_string())
            .collect();
        assert_eq!(bus, ["BU41", "BU12"]);
    }

    #[test]
    fn paper_platform_shape() {
        let p = paper_three_segment_platform();
        assert_eq!(p.segment_count(), 3);
        assert_eq!(p.package_size(), 36);
        assert_eq!(p.ca_clock().period_ps(), 9009);
        assert_eq!(p.segment_clock(SegmentId(0)).period_ps(), 10989);
        assert_eq!(p.segment_clock(SegmentId(1)).period_ps(), 10204);
        assert_eq!(p.segment_clock(SegmentId(2)).period_ps(), 11236);
    }
}
