//! Unified, span-carrying diagnostics shared by every front end.
//!
//! Each layer of the tool flow — DSL lexer/parser, XML parser/importer,
//! model construction, PSM validation and the emulator's pre-flight checks —
//! reports failures as a [`SegbusError`]: a stable error *code*, a
//! human-readable message and, when the input is text, the line/column
//! [`SourceSpan`] the error points at. Codes are grouped by layer:
//!
//! | prefix | layer                                              |
//! |--------|----------------------------------------------------|
//! | `P0xx` | DSL front end (lexing, parsing, literal ranges)    |
//! | `X0xx` | XML front end (well-formedness, scheme, values)    |
//! | `M0xx` | model construction ([`ModelError`] hard errors)    |
//! | `V0xx` | PSM validation ([`crate::validate::Constraint`])   |
//! | `C0xx` | emulator pre-flight checks (`segbus-core`)         |
//! | `T0xx` | trace layer (`.sbt` files, trace-requiring APIs)   |
//!
//! Codes are part of the public contract: golden tests assert on them and
//! scripts may grep reports for them, so existing codes must never be
//! renumbered.

use std::fmt;

use crate::error::ModelError;

/// A 1-based line/column position in a textual input.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SourceSpan {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A structured diagnostic: stable code, message, optional source span.
///
/// Renders as `error[P003] at 3:14: message` (span present) or
/// `error[M006]: message` (no span).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SegbusError {
    /// Stable error code, e.g. `"P003"` (see module docs for the scheme).
    pub code: &'static str,
    /// Human-readable description of the failure.
    pub message: String,
    /// Where in the textual input the error was detected, if applicable.
    pub span: Option<SourceSpan>,
}

impl SegbusError {
    /// A new diagnostic without a source span.
    pub fn new(code: &'static str, message: impl Into<String>) -> SegbusError {
        SegbusError {
            code,
            message: message.into(),
            span: None,
        }
    }

    /// Attach a 1-based line/column span.
    pub fn with_span(mut self, line: u32, col: u32) -> SegbusError {
        self.span = Some(SourceSpan { line, col });
        self
    }

    /// Prefix the message with a context label (e.g. a file path):
    /// `error[P002] at 3:1: models/a.sbd: expected ...`.
    pub fn in_context(mut self, context: &str) -> SegbusError {
        self.message = format!("{context}: {}", self.message);
        self
    }
}

impl fmt::Display for SegbusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "error[{}] at {span}: {}", self.code, self.message),
            None => write!(f, "error[{}]: {}", self.code, self.message),
        }
    }
}

impl std::error::Error for SegbusError {}

impl ModelError {
    /// The stable diagnostic code for this error (`M0xx`, or the `V0xx`
    /// code of the first failed constraint for [`ModelError::Invalid`]).
    pub fn code(&self) -> &'static str {
        match self {
            ModelError::UnknownProcess(_) => "M001",
            ModelError::UnknownSegment(_) => "M002",
            ModelError::EmptyFlow { .. } => "M003",
            ModelError::SelfFlow(_) => "M004",
            ModelError::DuplicateProcessName(_) => "M005",
            ModelError::NoSegments => "M006",
            ModelError::RingTooSmall(_) => "M007",
            ModelError::ZeroPackageSize => "M008",
            ModelError::Unplaced(_) => "M009",
            ModelError::InvalidNoise { .. } => "M010",
            ModelError::Invalid { first_code, .. } => first_code,
        }
    }
}

impl From<ModelError> for SegbusError {
    fn from(e: ModelError) -> SegbusError {
        SegbusError::new(e.code(), e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;

    #[test]
    fn display_with_and_without_span() {
        let plain = SegbusError::new("M006", "platform has no segments");
        assert_eq!(plain.to_string(), "error[M006]: platform has no segments");
        let spanned = SegbusError::new("P003", "integer out of range").with_span(3, 14);
        assert_eq!(
            spanned.to_string(),
            "error[P003] at 3:14: integer out of range"
        );
    }

    #[test]
    fn context_prefixes_message() {
        let e = SegbusError::new("P002", "expected '{'")
            .with_span(1, 5)
            .in_context("a.sbd");
        assert_eq!(e.to_string(), "error[P002] at 1:5: a.sbd: expected '{'");
    }

    #[test]
    fn model_error_codes_are_stable() {
        assert_eq!(ModelError::NoSegments.code(), "M006");
        assert_eq!(ModelError::ZeroPackageSize.code(), "M008");
        assert_eq!(ModelError::Unplaced(ProcessId(0)).code(), "M009");
        let invalid = ModelError::Invalid {
            errors: 1,
            first: "x".into(),
            first_code: "V003",
        };
        assert_eq!(invalid.code(), "V003");
        let converted: SegbusError = invalid.into();
        assert_eq!(converted.code, "V003");
        assert!(converted.span.is_none());
    }
}
