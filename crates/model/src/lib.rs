//! # segbus-model
//!
//! Core domain model for the SegBus segmented-bus platform and the
//! Packet Synchronous Data Flow (PSDF) application specification, as
//! described in *"A Performance Estimation Technique for the SegBus
//! Distributed Architecture"* (Niazi, Seceleanu, Tenhunen — TUCS TR 980,
//! ICPP 2010).
//!
//! The crate is dependency-free and provides the shared vocabulary used by
//! every other crate in the workspace:
//!
//! * [`psdf`] — processes, packet flows `(Pt, D, T, C)` and applications;
//! * [`platform`] — segments, clock domains, border units, the central
//!   arbiter and platform instances;
//! * [`mapping`] — the allocation of application processes onto segments
//!   (the *Platform Specific Model*, PSM);
//! * [`matrix`] — the device-to-device communication matrix derived from a
//!   PSDF (paper Fig. 8);
//! * [`validate`] — the structural constraints the paper encodes in OCL,
//!   reproduced as Rust checks with stable error codes;
//! * [`time`] — picosecond-resolution time and per-domain clock arithmetic.
//!
//! # Quick example
//!
//! ```
//! use segbus_model::prelude::*;
//!
//! // Two processes connected by one flow of 72 items, order 1, 250 ticks
//! // of processing per (36-item) package.
//! let mut app = Application::new("demo");
//! let p0 = app.add_process(Process::initial("P0"));
//! let p1 = app.add_process(Process::final_("P1"));
//! app.add_flow(Flow::new(p0, p1, 72, 1, 250)).unwrap();
//!
//! // A two-segment platform, 36-item packages.
//! let platform = Platform::builder("mini")
//!     .package_size(36)
//!     .ca_clock(ClockDomain::from_mhz(111.0))
//!     .segment("S1", ClockDomain::from_mhz(91.0))
//!     .segment("S2", ClockDomain::from_mhz(98.0))
//!     .build()
//!     .unwrap();
//!
//! // Map P0 to segment 0 and P1 to segment 1.
//! let mut alloc = Allocation::new(platform.segment_count());
//! alloc.assign(p0, SegmentId(0));
//! alloc.assign(p1, SegmentId(1));
//!
//! let psm = Psm::new(platform, app, alloc).unwrap();
//! assert_eq!(psm.matrix().items(p0, p1), 72);
//! ```

#![warn(missing_docs)]

pub mod diag;
pub mod digest;
pub mod error;
pub mod ids;
pub mod mapping;
pub mod matrix;
pub mod platform;
pub mod psdf;
pub mod rng;
pub mod stochastic;
pub mod time;
pub mod validate;

pub use diag::{SegbusError, SourceSpan};
pub use digest::{digest_with_slots, Fnv64};
pub use error::ModelError;
pub use ids::{FlowId, ProcessId, SegmentId};
pub use mapping::{Allocation, Psm};
pub use matrix::CommMatrix;
pub use platform::{BorderUnitRef, Platform, PlatformBuilder, Segment, Topology};
pub use psdf::{Application, CostModel, Flow, Process, ProcessKind, Wave};
pub use rng::SmallRng;
pub use stochastic::{sample_psm, Dist, FlowNoise};
pub use time::{ClockDomain, Picos};
pub use validate::{Constraint, Diagnostic, Severity};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::diag::{SegbusError, SourceSpan};
    pub use crate::error::ModelError;
    pub use crate::ids::{FlowId, ProcessId, SegmentId};
    pub use crate::mapping::{Allocation, Psm};
    pub use crate::matrix::CommMatrix;
    pub use crate::platform::{Platform, Segment, Topology};
    pub use crate::psdf::{Application, CostModel, Flow, Process, ProcessKind};
    pub use crate::time::{ClockDomain, Picos};
}
