//! Process-to-segment allocation and the complete Platform Specific Model.
//!
//! The PSM (paper §2.2/§3.2) combines a platform instance with the placement
//! of every application process on a segment. [`Psm`] bundles platform,
//! application and allocation after validating them together, and derives
//! the communication matrix.

use crate::error::ModelError;
use crate::ids::{ProcessId, SegmentId};
use crate::matrix::CommMatrix;
use crate::platform::Platform;
use crate::psdf::Application;
use crate::validate::{self, Severity};

/// Assignment of processes to segments.
///
/// Internally a dense `ProcessId -> Option<SegmentId>` map; a `None` entry
/// means the process has not been placed yet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Allocation {
    segments: usize,
    slots: Vec<Option<SegmentId>>,
}

impl Allocation {
    /// An empty allocation for a platform with `segments` segments.
    pub fn new(segments: usize) -> Allocation {
        Allocation {
            segments,
            slots: Vec::new(),
        }
    }

    /// Build an allocation from per-segment process lists, e.g. the paper's
    /// Fig. 9 notation `0 1 2 3 8 9 10 ‖ 5 6 7 11 12 13 14 ‖ 4`.
    ///
    /// `groups[k]` lists the process indices placed on segment `k`.
    pub fn from_groups(groups: &[&[u32]]) -> Allocation {
        let mut a = Allocation::new(groups.len());
        for (seg, procs) in groups.iter().enumerate() {
            for &p in *procs {
                a.assign(ProcessId(p), SegmentId(seg as u16));
            }
        }
        a
    }

    /// Number of segments this allocation targets.
    pub fn segment_count(&self) -> usize {
        self.segments
    }

    /// Place (or move) a process on a segment.
    pub fn assign(&mut self, p: ProcessId, s: SegmentId) {
        if self.slots.len() <= p.index() {
            self.slots.resize(p.index() + 1, None);
        }
        self.slots[p.index()] = Some(s);
    }

    /// The segment a process is placed on, if placed.
    #[inline]
    pub fn segment_of(&self, p: ProcessId) -> Option<SegmentId> {
        self.slots.get(p.index()).copied().flatten()
    }

    /// The segment of a process, panicking if unplaced (for use after
    /// validation).
    #[inline]
    pub fn segment_of_checked(&self, p: ProcessId) -> SegmentId {
        self.segment_of(p)
            .unwrap_or_else(|| panic!("process {p} is not placed"))
    }

    /// Processes placed on segment `s`, ascending by id.
    pub fn processes_on(&self, s: SegmentId) -> Vec<ProcessId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| (*slot == Some(s)).then_some(ProcessId(i as u32)))
            .collect()
    }

    /// Number of processes placed on segment `s`.
    pub fn count_on(&self, s: SegmentId) -> usize {
        self.slots.iter().filter(|slot| **slot == Some(s)).count()
    }

    /// `true` if every one of the first `n` processes is placed.
    pub fn is_complete(&self, n: usize) -> bool {
        self.slots.len() >= n && self.slots[..n].iter().all(Option::is_some)
    }

    /// First unplaced process among the first `n`, if any.
    pub fn first_unplaced(&self, n: usize) -> Option<ProcessId> {
        (0..n)
            .map(|i| ProcessId(i as u32))
            .find(|p| self.segment_of(*p).is_none())
    }

    /// Total inter-segment traffic of an application under this allocation:
    /// `Σ_flows items(f) · hops(seg(src), seg(dst))`.
    ///
    /// This is the objective the PlaceTool allocator minimises.
    pub fn weighted_cut(&self, app: &Application) -> u64 {
        app.flows()
            .iter()
            .map(|f| {
                let a = self.segment_of_checked(f.src);
                let b = self.segment_of_checked(f.dst);
                f.items * a.hops_to(b) as u64
            })
            .sum()
    }

    /// Like [`Allocation::weighted_cut`] but weighted in packages at a given
    /// package size (what actually crosses the BUs).
    pub fn package_cut(&self, app: &Application, package_size: u32) -> u64 {
        app.flows()
            .iter()
            .map(|f| {
                let a = self.segment_of_checked(f.src);
                let b = self.segment_of_checked(f.dst);
                f.packages(package_size) * a.hops_to(b) as u64
            })
            .sum()
    }

    /// Topology-aware item cut: hop distances come from the platform, so a
    /// ring's wrap-around link is credited.
    pub fn weighted_cut_on(&self, app: &Application, platform: &crate::platform::Platform) -> u64 {
        app.flows()
            .iter()
            .map(|f| {
                let a = self.segment_of_checked(f.src);
                let b = self.segment_of_checked(f.dst);
                f.items * platform.hops(a, b) as u64
            })
            .sum()
    }

    /// Topology-aware package cut at the platform's package size.
    pub fn package_cut_on(&self, app: &Application, platform: &crate::platform::Platform) -> u64 {
        let s = platform.package_size();
        app.flows()
            .iter()
            .map(|f| {
                let a = self.segment_of_checked(f.src);
                let b = self.segment_of_checked(f.dst);
                f.packages(s) * platform.hops(a, b) as u64
            })
            .sum()
    }
}

/// A validated Platform Specific Model: platform + application + allocation.
#[derive(Clone, PartialEq, Debug)]
pub struct Psm {
    platform: Platform,
    application: Application,
    allocation: Allocation,
    matrix: CommMatrix,
}

impl Psm {
    /// Combine the three parts, running the full validation pass. Returns
    /// [`ModelError::Invalid`] if any error-severity diagnostic fires.
    pub fn new(
        platform: Platform,
        application: Application,
        allocation: Allocation,
    ) -> Result<Psm, ModelError> {
        let diags = validate::validate(&platform, &application, &allocation);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        if let Some(first) = errors.first() {
            return Err(ModelError::Invalid {
                errors: errors.len(),
                first: first.to_string(),
                first_code: first.constraint.code(),
            });
        }
        let matrix = CommMatrix::from_application(&application);
        Ok(Psm {
            platform,
            application,
            allocation,
            matrix,
        })
    }

    /// The platform instance.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The application (PSDF).
    pub fn application(&self) -> &Application {
        &self.application
    }

    /// The process placement.
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// The derived communication matrix.
    pub fn matrix(&self) -> &CommMatrix {
        &self.matrix
    }

    /// Segment of a process (always defined after validation).
    #[inline]
    pub fn segment_of(&self, p: ProcessId) -> SegmentId {
        self.allocation.segment_of_checked(p)
    }

    /// `true` if the flow stays within one segment.
    pub fn is_local_flow(&self, f: &crate::psdf::Flow) -> bool {
        self.segment_of(f.src) == self.segment_of(f.dst)
    }

    /// Rebuild the PSM with the same application/allocation on a platform
    /// that differs only in package size.
    pub fn with_package_size(&self, s: u32) -> Result<Psm, ModelError> {
        Psm::new(
            self.platform.with_package_size(s)?,
            self.application.clone(),
            self.allocation.clone(),
        )
    }

    /// Rebuild the PSM with one process moved to another segment (the
    /// paper's third experiment moves P9 from segment 1 to segment 3).
    pub fn with_process_moved(&self, p: ProcessId, to: SegmentId) -> Result<Psm, ModelError> {
        if !self.platform.contains(to) {
            return Err(ModelError::UnknownSegment(to));
        }
        let mut alloc = self.allocation.clone();
        alloc.assign(p, to);
        Psm::new(self.platform.clone(), self.application.clone(), alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psdf::{Flow, Process};
    use crate::time::ClockDomain;

    fn parts() -> (Platform, Application, Allocation) {
        let platform = Platform::builder("t")
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let mut app = Application::new("a");
        let p0 = app.add_process(Process::initial("P0"));
        let p1 = app.add_process(Process::final_("P1"));
        app.add_flow(Flow::new(p0, p1, 72, 1, 10)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(p0, SegmentId(0));
        alloc.assign(p1, SegmentId(1));
        (platform, app, alloc)
    }

    #[test]
    fn from_groups_matches_manual() {
        let a = Allocation::from_groups(&[&[0, 1, 2], &[3], &[4, 5]]);
        assert_eq!(a.segment_count(), 3);
        assert_eq!(a.segment_of(ProcessId(0)), Some(SegmentId(0)));
        assert_eq!(a.segment_of(ProcessId(3)), Some(SegmentId(1)));
        assert_eq!(a.segment_of(ProcessId(5)), Some(SegmentId(2)));
        assert_eq!(a.segment_of(ProcessId(6)), None);
        assert_eq!(a.count_on(SegmentId(0)), 3);
        assert_eq!(
            a.processes_on(SegmentId(2)),
            vec![ProcessId(4), ProcessId(5)]
        );
    }

    #[test]
    fn completeness() {
        let mut a = Allocation::new(2);
        assert!(!a.is_complete(1));
        assert_eq!(a.first_unplaced(2), Some(ProcessId(0)));
        a.assign(ProcessId(0), SegmentId(0));
        assert!(a.is_complete(1));
        assert_eq!(a.first_unplaced(2), Some(ProcessId(1)));
        a.assign(ProcessId(1), SegmentId(1));
        assert!(a.is_complete(2));
        assert_eq!(a.first_unplaced(2), None);
    }

    #[test]
    fn weighted_cut_counts_hops() {
        let mut app = Application::new("a");
        let p0 = app.add_process(Process::new("P0"));
        let p1 = app.add_process(Process::new("P1"));
        let p2 = app.add_process(Process::new("P2"));
        app.add_flow(Flow::new(p0, p1, 10, 1, 1)).unwrap();
        app.add_flow(Flow::new(p0, p2, 5, 1, 1)).unwrap();
        let a = Allocation::from_groups(&[&[0], &[1], &[2]]);
        // P0->P1: 10 items × 1 hop; P0->P2: 5 items × 2 hops.
        assert_eq!(a.weighted_cut(&app), 20);
        let local = Allocation::from_groups(&[&[0, 1, 2], &[], &[]]);
        assert_eq!(local.weighted_cut(&app), 0);
        // package_cut at size 4: 10 items -> 3 pkgs ×1 + 5 items -> 2 pkgs ×2.
        assert_eq!(a.package_cut(&app, 4), 7);
    }

    #[test]
    fn psm_builds_and_derives_matrix() {
        let (p, a, al) = parts();
        let psm = Psm::new(p, a, al).unwrap();
        assert_eq!(psm.matrix().items(ProcessId(0), ProcessId(1)), 72);
        assert_eq!(psm.segment_of(ProcessId(0)), SegmentId(0));
        assert!(!psm.is_local_flow(&psm.application().flows()[0]));
    }

    #[test]
    fn psm_rejects_unplaced_process() {
        let (p, a, _) = parts();
        let al = Allocation::new(2); // nothing placed
        let err = Psm::new(p, a, al).unwrap_err();
        assert!(matches!(err, ModelError::Invalid { .. }));
    }

    #[test]
    fn psm_with_process_moved() {
        let (p, a, al) = parts();
        let psm = Psm::new(p, a, al).unwrap();
        let moved = psm.with_process_moved(ProcessId(1), SegmentId(0)).unwrap();
        assert!(moved.is_local_flow(&moved.application().flows()[0]));
        assert!(psm.with_process_moved(ProcessId(1), SegmentId(7)).is_err());
    }

    #[test]
    fn psm_with_package_size() {
        let (p, a, al) = parts();
        let psm = Psm::new(p, a, al).unwrap();
        assert_eq!(
            psm.with_package_size(18).unwrap().platform().package_size(),
            18
        );
    }
}
