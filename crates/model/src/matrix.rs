//! The device-to-device communication matrix (paper §3.5, Fig. 8).
//!
//! Entry `(i, j)` holds the number of data items process `Pi` sends to
//! process `Pj` over the whole application run. The matrix is derived from
//! the PSDF and is the input of the *PlaceTool* allocator.

use std::fmt;
use std::fmt::Write as _;

use crate::ids::ProcessId;
use crate::psdf::Application;

/// Dense `n × n` matrix of data-item counts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CommMatrix {
    n: usize,
    items: Vec<u64>, // row-major
}

impl CommMatrix {
    /// An all-zero matrix for `n` processes.
    pub fn zero(n: usize) -> CommMatrix {
        CommMatrix {
            n,
            items: vec![0; n * n],
        }
    }

    /// Build the matrix from a PSDF by summing the items of every flow with
    /// the same (source, destination) pair.
    pub fn from_application(app: &Application) -> CommMatrix {
        let mut m = CommMatrix::zero(app.process_count());
        for f in app.flows() {
            m.add(f.src, f.dst, f.items);
        }
        m
    }

    /// Matrix dimension (number of processes).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the matrix has no processes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn idx(&self, src: ProcessId, dst: ProcessId) -> usize {
        debug_assert!(src.index() < self.n && dst.index() < self.n);
        src.index() * self.n + dst.index()
    }

    /// Items sent from `src` to `dst`.
    #[inline]
    pub fn items(&self, src: ProcessId, dst: ProcessId) -> u64 {
        self.items[self.idx(src, dst)]
    }

    /// Add `items` to the `(src, dst)` entry.
    pub fn add(&mut self, src: ProcessId, dst: ProcessId, items: u64) {
        let i = self.idx(src, dst);
        self.items[i] += items;
    }

    /// Total items a process emits (row sum).
    pub fn row_sum(&self, src: ProcessId) -> u64 {
        (0..self.n)
            .map(|j| self.items[src.index() * self.n + j])
            .sum()
    }

    /// Total items a process receives (column sum).
    pub fn col_sum(&self, dst: ProcessId) -> u64 {
        (0..self.n)
            .map(|i| self.items[i * self.n + dst.index()])
            .sum()
    }

    /// Total items over all pairs.
    pub fn total(&self) -> u64 {
        self.items.iter().sum()
    }

    /// Iterate over the non-zero entries `(src, dst, items)` in row-major
    /// order.
    pub fn entries(&self) -> impl Iterator<Item = (ProcessId, ProcessId, u64)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n).filter_map(move |j| {
                let v = self.items[i * self.n + j];
                (v > 0).then_some((ProcessId(i as u32), ProcessId(j as u32), v))
            })
        })
    }

    /// Render the matrix in the layout of the paper's Fig. 8 (header row of
    /// process names, one row per source process).
    pub fn to_table(&self) -> String {
        let width = 5usize;
        let mut out = String::new();
        let _ = write!(out, "{:width$}", "");
        for j in 0..self.n {
            let _ = write!(out, "{:>width$}", format!("P{j}"));
        }
        out.push('\n');
        for i in 0..self.n {
            let _ = write!(out, "{:<width$}", format!("P{i}"));
            for j in 0..self.n {
                let _ = write!(out, "{:>width$}", self.items[i * self.n + j]);
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for CommMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psdf::{Flow, Process};

    fn app() -> Application {
        let mut a = Application::new("t");
        let p0 = a.add_process(Process::initial("P0"));
        let p1 = a.add_process(Process::new("P1"));
        let p2 = a.add_process(Process::final_("P2"));
        a.add_flow(Flow::new(p0, p1, 100, 1, 1)).unwrap();
        a.add_flow(Flow::new(p0, p2, 50, 1, 1)).unwrap();
        a.add_flow(Flow::new(p1, p2, 70, 2, 1)).unwrap();
        a
    }

    #[test]
    fn from_application_sums_flows() {
        let mut a = app();
        // Two flows over the same pair must sum.
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        a.add_flow(Flow::new(p0, p1, 11, 3, 1)).unwrap();
        let m = CommMatrix::from_application(&a);
        assert_eq!(m.items(p0, p1), 111);
        assert_eq!(m.items(p0, ProcessId(2)), 50);
        assert_eq!(m.items(p1, p0), 0);
        assert_eq!(m.total(), 231);
    }

    #[test]
    fn row_and_col_sums() {
        let m = CommMatrix::from_application(&app());
        assert_eq!(m.row_sum(ProcessId(0)), 150);
        assert_eq!(m.col_sum(ProcessId(2)), 120);
        assert_eq!(m.row_sum(ProcessId(2)), 0);
    }

    #[test]
    fn entries_skip_zeros() {
        let m = CommMatrix::from_application(&app());
        let e: Vec<_> = m.entries().collect();
        assert_eq!(
            e,
            vec![
                (ProcessId(0), ProcessId(1), 100),
                (ProcessId(0), ProcessId(2), 50),
                (ProcessId(1), ProcessId(2), 70),
            ]
        );
    }

    #[test]
    fn table_layout() {
        let m = CommMatrix::from_application(&app());
        let t = m.to_table();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 rows
        assert!(lines[0].contains("P0") && lines[0].contains("P2"));
        assert!(lines[1].trim_start().starts_with("P0"));
        assert!(lines[1].contains("100"));
    }

    #[test]
    fn zero_matrix() {
        let m = CommMatrix::zero(4);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.total(), 0);
        assert_eq!(m.entries().count(), 0);
        assert!(CommMatrix::zero(0).is_empty());
    }
}
