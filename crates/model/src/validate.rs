//! Structural validation of platform + application + allocation.
//!
//! The paper's DSL attaches OCL constraints to the SegBus UML profile and
//! reports violations during modeling (§2.2: "Upon breach of any constraint
//! requirement during the design process, the tool provides appropriate
//! error message"). This module reproduces that check as a plain function
//! producing [`Diagnostic`]s with stable codes, so the DSL front-end, the
//! XML importer and [`crate::mapping::Psm::new`] all share one rule set.

use std::fmt;

use crate::ids::ProcessId;
use crate::mapping::Allocation;
use crate::platform::Platform;
use crate::psdf::{Application, ProcessKind};

/// Stable identifiers for the individual constraints.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Constraint {
    /// V001 — the platform must contain at least one segment.
    PlatformHasSegments,
    /// V002 — the package size must be non-zero.
    PackageSizeNonZero,
    /// V003 — every application process must be placed on a segment.
    ProcessPlaced,
    /// V004 — placements must reference segments that exist.
    SegmentExists,
    /// V005 — every segment should host at least one functional unit.
    SegmentNonEmpty,
    /// V006 — flow ordering must respect data dependencies (a flow's order
    /// must exceed the order of every flow feeding its source), otherwise
    /// the wave schedule deadlocks.
    OrderRespectsDependencies,
    /// V007 — flow item counts should be multiples of the package size
    /// (otherwise the final package is padded).
    ItemsFillPackages,
    /// V008 — the application must have at least one source process.
    HasSource,
    /// V009 — initial processes take no inputs; final processes produce no
    /// outputs.
    KindConsistent,
    /// V010 — the dataflow graph must be acyclic.
    Acyclic,
    /// V011 — process names must be unique.
    UniqueNames,
    /// V012 — every process should participate in at least one flow.
    ProcessConnected,
}

impl Constraint {
    /// The stable code printed in diagnostics (`V001` …).
    pub fn code(self) -> &'static str {
        match self {
            Constraint::PlatformHasSegments => "V001",
            Constraint::PackageSizeNonZero => "V002",
            Constraint::ProcessPlaced => "V003",
            Constraint::SegmentExists => "V004",
            Constraint::SegmentNonEmpty => "V005",
            Constraint::OrderRespectsDependencies => "V006",
            Constraint::ItemsFillPackages => "V007",
            Constraint::HasSource => "V008",
            Constraint::KindConsistent => "V009",
            Constraint::Acyclic => "V010",
            Constraint::UniqueNames => "V011",
            Constraint::ProcessConnected => "V012",
        }
    }
}

/// How serious a violated constraint is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Advisory; the model can still be emulated.
    Warning,
    /// The model is not executable; [`crate::mapping::Psm::new`] refuses it.
    Error,
}

/// One validation finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Which rule fired.
    pub constraint: Constraint,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description naming the offending element.
    pub message: String,
}

impl Diagnostic {
    fn error(constraint: Constraint, message: String) -> Diagnostic {
        Diagnostic {
            constraint,
            severity: Severity::Error,
            message,
        }
    }

    fn warning(constraint: Constraint, message: String) -> Diagnostic {
        Diagnostic {
            constraint,
            severity: Severity::Warning,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}]: {}", self.constraint.code(), self.message)
    }
}

/// Run every constraint over the triple, returning all findings (empty means
/// fully valid).
pub fn validate(platform: &Platform, app: &Application, alloc: &Allocation) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    validate_platform(platform, &mut out);
    validate_application(app, platform.package_size(), &mut out);
    validate_allocation(platform, app, alloc, &mut out);
    out
}

/// Platform-only checks (V001, V002).
pub fn validate_platform(platform: &Platform, out: &mut Vec<Diagnostic>) {
    if platform.segment_count() == 0 {
        out.push(Diagnostic::error(
            Constraint::PlatformHasSegments,
            "platform contains no segments".into(),
        ));
    }
    if platform.package_size() == 0 {
        out.push(Diagnostic::error(
            Constraint::PackageSizeNonZero,
            "package size is zero".into(),
        ));
    }
}

/// Application-only checks (V006–V012).
pub fn validate_application(app: &Application, package_size: u32, out: &mut Vec<Diagnostic>) {
    // V011 — unique names.
    for (i, p) in app.processes().iter().enumerate() {
        if app.processes()[..i].iter().any(|q| q.name == p.name) {
            out.push(Diagnostic::error(
                Constraint::UniqueNames,
                format!("process name {:?} is used more than once", p.name),
            ));
        }
    }

    // V010 — acyclicity (and V008 source existence, which a cyclic graph
    // also violates).
    let cyclic = {
        let mut probe = app.clone();
        probe.assign_orders_topologically().is_err()
    };
    if cyclic {
        out.push(Diagnostic::error(
            Constraint::Acyclic,
            "the dataflow graph contains a cycle".into(),
        ));
    }
    if app.process_count() > 0 && app.sources().is_empty() {
        out.push(Diagnostic::error(
            Constraint::HasSource,
            "no process is a source (every process has inputs)".into(),
        ));
    }

    // V006 — wave schedule must respect dependencies (skip if cyclic; the
    // cycle diagnostic already covers it).
    if !cyclic && !app.orders_respect_dependencies() {
        for f in app.flows() {
            let bad = app
                .inputs_of(f.src)
                .any(|in_id| app.flow(in_id).order >= f.order);
            if bad {
                out.push(Diagnostic::error(
                    Constraint::OrderRespectsDependencies,
                    format!(
                        "flow {} -> {} has order {} not greater than the order of every flow feeding {}",
                        app.process(f.src).name,
                        app.process(f.dst).name,
                        f.order,
                        app.process(f.src).name,
                    ),
                ));
            }
        }
    }

    // V007 — item counts should fill whole packages.
    if package_size > 0 {
        for f in app.flows() {
            if f.items % package_size as u64 != 0 {
                out.push(Diagnostic::warning(
                    Constraint::ItemsFillPackages,
                    format!(
                        "flow {} -> {} carries {} items, not a multiple of the package size {} (last package is padded)",
                        app.process(f.src).name,
                        app.process(f.dst).name,
                        f.items,
                        package_size,
                    ),
                ));
            }
        }
    }

    // V009 — kind consistency.
    for (i, p) in app.processes().iter().enumerate() {
        let id = ProcessId(i as u32);
        match p.kind {
            ProcessKind::Initial => {
                if app.inputs_of(id).next().is_some() {
                    out.push(Diagnostic::warning(
                        Constraint::KindConsistent,
                        format!("initial process {} has incoming flows", p.name),
                    ));
                }
            }
            ProcessKind::Final => {
                if app.outputs_of(id).next().is_some() {
                    out.push(Diagnostic::warning(
                        Constraint::KindConsistent,
                        format!("final process {} has outgoing flows", p.name),
                    ));
                }
            }
            ProcessKind::Internal => {}
        }
    }

    // V012 — connectivity.
    for (i, p) in app.processes().iter().enumerate() {
        let id = ProcessId(i as u32);
        if app.inputs_of(id).next().is_none() && app.outputs_of(id).next().is_none() {
            out.push(Diagnostic::warning(
                Constraint::ProcessConnected,
                format!("process {} participates in no flow", p.name),
            ));
        }
    }
}

/// Placement checks (V003–V005).
pub fn validate_allocation(
    platform: &Platform,
    app: &Application,
    alloc: &Allocation,
    out: &mut Vec<Diagnostic>,
) {
    for (i, p) in app.processes().iter().enumerate() {
        let id = ProcessId(i as u32);
        match alloc.segment_of(id) {
            None => out.push(Diagnostic::error(
                Constraint::ProcessPlaced,
                format!("process {} is not placed on any segment", p.name),
            )),
            Some(s) if !platform.contains(s) => out.push(Diagnostic::error(
                Constraint::SegmentExists,
                format!("process {} is placed on non-existent {}", p.name, s),
            )),
            Some(_) => {}
        }
    }
    for s in 0..platform.segment_count() as u16 {
        let s = crate::ids::SegmentId(s);
        if alloc.count_on(s) == 0 {
            out.push(Diagnostic::warning(
                Constraint::SegmentNonEmpty,
                format!("{s} hosts no functional unit"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SegmentId;
    use crate::psdf::{Flow, Process};
    use crate::time::ClockDomain;

    fn platform(n: usize) -> Platform {
        Platform::builder("t")
            .uniform_segments(n, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap()
    }

    fn valid_pair() -> (Application, Allocation) {
        let mut app = Application::new("a");
        let p0 = app.add_process(Process::initial("P0"));
        let p1 = app.add_process(Process::final_("P1"));
        app.add_flow(Flow::new(p0, p1, 72, 1, 10)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(p0, SegmentId(0));
        alloc.assign(p1, SegmentId(1));
        (app, alloc)
    }

    fn codes(d: &[Diagnostic]) -> Vec<&'static str> {
        d.iter().map(|d| d.constraint.code()).collect()
    }

    #[test]
    fn valid_model_produces_no_diagnostics() {
        let (app, alloc) = valid_pair();
        assert!(validate(&platform(2), &app, &alloc).is_empty());
    }

    #[test]
    fn unplaced_process_is_error() {
        let (app, _) = valid_pair();
        let alloc = Allocation::new(2);
        let d = validate(&platform(2), &app, &alloc);
        assert!(codes(&d).contains(&"V003"));
        assert!(d.iter().any(|x| x.severity == Severity::Error));
    }

    #[test]
    fn placement_outside_platform_is_error() {
        let (app, mut alloc) = valid_pair();
        alloc.assign(ProcessId(1), SegmentId(9));
        let d = validate(&platform(2), &app, &alloc);
        assert!(codes(&d).contains(&"V004"));
    }

    #[test]
    fn empty_segment_is_warning() {
        let (app, mut alloc) = valid_pair();
        alloc.assign(ProcessId(1), SegmentId(0)); // seg 1 now empty
        let d = validate(&platform(2), &app, &alloc);
        assert_eq!(codes(&d), vec!["V005"]);
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn cycle_is_error() {
        let mut app = Application::new("cyc");
        let a = app.add_process(Process::new("A"));
        let b = app.add_process(Process::new("B"));
        app.add_flow(Flow::new(a, b, 36, 1, 1)).unwrap();
        app.add_flow(Flow::new(b, a, 36, 2, 1)).unwrap();
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        let d = validate(&platform(1), &app, &alloc);
        assert!(codes(&d).contains(&"V010"));
        assert!(codes(&d).contains(&"V008"));
    }

    #[test]
    fn bad_order_is_error() {
        let mut app = Application::new("ord");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::final_("C"));
        app.add_flow(Flow::new(a, b, 36, 2, 1)).unwrap();
        app.add_flow(Flow::new(b, c, 36, 1, 1)).unwrap();
        let mut alloc = Allocation::new(1);
        for p in [a, b, c] {
            alloc.assign(p, SegmentId(0));
        }
        let d = validate(&platform(1), &app, &alloc);
        assert!(codes(&d).contains(&"V006"));
    }

    #[test]
    fn padded_package_is_warning() {
        let mut app = Application::new("pad");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 37, 1, 1)).unwrap();
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        let d = validate(&platform(1), &app, &alloc);
        assert_eq!(codes(&d), vec!["V007"]);
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn kind_inconsistency_is_warning() {
        let mut app = Application::new("k");
        let a = app.add_process(Process::final_("A")); // final with output
        let b = app.add_process(Process::initial("B")); // initial with input
        app.add_flow(Flow::new(a, b, 36, 1, 1)).unwrap();
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        let d = validate(&platform(1), &app, &alloc);
        let v009 = d
            .iter()
            .filter(|d| d.constraint == Constraint::KindConsistent);
        assert_eq!(v009.count(), 2);
    }

    #[test]
    fn disconnected_process_is_warning() {
        let mut app = Application::new("d");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        let lone = app.add_process(Process::new("L"));
        app.add_flow(Flow::new(a, b, 36, 1, 1)).unwrap();
        let mut alloc = Allocation::new(1);
        for p in [a, b, lone] {
            alloc.assign(p, SegmentId(0));
        }
        let d = validate(&platform(1), &app, &alloc);
        assert!(codes(&d).contains(&"V012"));
    }

    #[test]
    fn duplicate_names_are_error() {
        let mut app = Application::new("n");
        let a = app.add_process(Process::initial("X"));
        let b = app.add_process(Process::final_("X"));
        app.add_flow(Flow::new(a, b, 36, 1, 1)).unwrap();
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        let d = validate(&platform(1), &app, &alloc);
        assert!(codes(&d).contains(&"V011"));
    }

    #[test]
    fn diagnostic_display() {
        let d = Diagnostic::error(Constraint::ProcessPlaced, "process P3 is not placed".into());
        assert_eq!(d.to_string(), "error[V003]: process P3 is not placed");
    }
}
