//! # segbus-gen
//!
//! Seeded scenario generator for the committed corpus (`corpus/` at the
//! repository root) and for fuzzing.
//!
//! A *scenario* is a complete stochastic PSM — application with
//! distribution annotations (`segbus_model::stochastic`), platform and
//! allocation — rendered to the canonical DSL. Scenarios come in
//! [`Family`] shapes modelled on the paper's workloads and on common
//! SegBus deployments:
//!
//! * `mp3` — the paper's 15-process MP3 decoder on its three-segment
//!   platform, with seeded per-flow cost/volume noise;
//! * `video` — the fork-join video encoder (capture → macroblock split →
//!   parallel DCT+quantise → entropy coding);
//! * `telecom` — DSP shapes: an FFT-style butterfly or the GSM encoder
//!   chain, alternating by seed;
//! * `ring` — a random layered DAG mapped round-robin onto a closed ring
//!   platform, exercising the wrap-around border unit;
//! * `star` — a hub fanning configuration data out to workers that return
//!   results to a collector (asymmetric volumes);
//! * `grid` — a large toroidal 2D mesh (100+ processes, small volumes,
//!   light compute): communication-dominated placement stress for the
//!   portfolio search and its ≥100-process benchmark leg.
//!
//! Everything is a pure function of `(family, seed)` through the
//! workspace's own [`SmallRng`]; regenerating the corpus from the
//! committed manifest must reproduce it byte for byte (`segbus corpus gen
//! --check`, enforced in CI).

#![warn(missing_docs)]

use std::fmt;

use segbus_apps::generators::{
    block_allocation, butterfly, grid, random_layered, ring_platform, round_robin_allocation,
    uniform_platform, GeneratorConfig,
};
use segbus_apps::mp3::{self, Mp3Config};
use segbus_model::ids::FlowId;
use segbus_model::mapping::Psm;
use segbus_model::prelude::*;
use segbus_model::rng::SmallRng;
use segbus_model::stochastic::{mix_seed, noise_digest, Dist, FlowNoise};

/// A scenario family: one recognisable workload shape.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Family {
    /// The paper's MP3 decoder case study with seeded noise.
    Mp3,
    /// Fork-join video encoder pipeline.
    Video,
    /// Telecom/DSP shapes: FFT butterfly or GSM encoder chain.
    Telecom,
    /// Random layered DAG on a closed ring platform.
    Ring,
    /// Hub-and-spokes fan-out/fan-in with asymmetric volumes.
    Star,
    /// Large toroidal 2D mesh, communication-dominated (100+ processes).
    Grid,
}

impl Family {
    /// Every family, in manifest order. `Grid` was appended last so the
    /// seed streams of the pre-existing families are unchanged.
    pub const ALL: [Family; 6] = [
        Family::Mp3,
        Family::Video,
        Family::Telecom,
        Family::Ring,
        Family::Star,
        Family::Grid,
    ];

    /// The manifest/directory name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Mp3 => "mp3",
            Family::Video => "video",
            Family::Telecom => "telecom",
            Family::Ring => "ring",
            Family::Star => "star",
            Family::Grid => "grid",
        }
    }

    /// Parse a manifest name.
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }

    /// Generate the scenario for `seed`: a valid, possibly stochastic PSM.
    /// Fully deterministic; families draw from disjoint seed streams.
    pub fn generate(self, seed: u64) -> Psm {
        // Stream-split per family so `mp3 1` and `video 1` are unrelated.
        let mut rng = SmallRng::seed_from_u64(mix_seed(seed, self as u64 + 1));
        match self {
            Family::Mp3 => gen_mp3(&mut rng),
            Family::Video => gen_video(&mut rng),
            Family::Telecom => gen_telecom(seed, &mut rng),
            Family::Ring => gen_ring(&mut rng),
            Family::Star => gen_star(&mut rng),
            Family::Grid => gen_grid(&mut rng),
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// family generators

/// Attach seeded noise to roughly `density`-fraction of the flows: a
/// cost (`ticks`) or volume (`items`) distribution derived from the base
/// value, sometimes with arrival jitter on top. Guarantees at least one
/// annotation so every scenario really is stochastic.
fn sprinkle_noise(app: &mut Application, rng: &mut SmallRng, density: f64) {
    let flows: Vec<(FlowId, u64, u64)> = app
        .flows()
        .iter()
        .enumerate()
        .map(|(i, f)| (FlowId(i as u32), f.items, f.ticks))
        .collect();
    for &(id, items, ticks) in &flows {
        if !rng.gen_bool(density) {
            continue;
        }
        let mut noise = FlowNoise::default();
        match rng.below(3) {
            0 => {
                noise.ticks = Some(Dist::Normal {
                    mean: ticks,
                    std: (ticks / 6).max(1),
                    lo: (ticks / 2).max(1),
                    hi: ticks + ticks / 2,
                });
            }
            1 => {
                noise.ticks = Some(Dist::Uniform {
                    lo: (ticks * 3 / 4).max(1),
                    hi: ticks + ticks / 4,
                });
            }
            _ => {
                noise.items = Some(Dist::Uniform {
                    lo: (items / 2).max(1),
                    hi: items + items / 2,
                });
            }
        }
        if rng.gen_bool(0.4) {
            noise.jitter = Some(Dist::Choice(vec![(0, 7), (ticks / 5 + 1, 1)]));
        }
        app.set_flow_noise(id, noise)
            .expect("generated noise is valid");
    }
    if !app.is_stochastic() {
        let (id, _, ticks) = flows[0];
        app.set_flow_noise(
            id,
            FlowNoise {
                ticks: Some(Dist::Uniform {
                    lo: (ticks * 3 / 4).max(1),
                    hi: ticks + ticks / 4,
                }),
                ..FlowNoise::default()
            },
        )
        .expect("fallback noise is valid");
    }
}

fn gen_mp3(rng: &mut SmallRng) -> Psm {
    let cfg = Mp3Config {
        ticks_per_package: rng.range_u64(200, 300),
    };
    let mut app = mp3::mp3_decoder_with(cfg);
    sprinkle_noise(&mut app, rng, 0.35);
    Psm::new(
        segbus_model::platform::paper_three_segment_platform(),
        app,
        mp3::three_segment_allocation(),
    )
    .expect("mp3 scenario validates")
}

fn gen_video(rng: &mut SmallRng) -> Psm {
    let mut app = segbus_apps::video_encoder();
    sprinkle_noise(&mut app, rng, 0.4);
    let segments = rng.range_usize(2, 3);
    segbus_apps::on_paper_platform(app, segments)
}

fn gen_telecom(seed: u64, rng: &mut SmallRng) -> Psm {
    let mut app = if seed % 2 == 0 {
        butterfly(
            2,
            GeneratorConfig {
                items_per_flow: 36 * rng.range_u64(4, 12),
                ticks_per_package: rng.range_u64(120, 400),
            },
        )
    } else {
        segbus_apps::gsm_encoder()
    };
    sprinkle_noise(&mut app, rng, 0.45);
    let segments = rng.range_usize(2, 3);
    let alloc = block_allocation(&app, segments);
    let platform = uniform_platform(segments, 36);
    Psm::new(platform, app, alloc).expect("telecom scenario validates")
}

fn gen_ring(rng: &mut SmallRng) -> Psm {
    let layers = rng.range_usize(3, 5);
    let width = rng.range_usize(2, 3);
    let mut app = random_layered(
        layers,
        width,
        rng.next_u64(),
        GeneratorConfig {
            items_per_flow: 36 * rng.range_u64(4, 10),
            ticks_per_package: rng.range_u64(150, 350),
        },
    );
    sprinkle_noise(&mut app, rng, 0.4);
    let segments = rng.range_usize(3, 4.min(layers * width));
    let alloc = round_robin_allocation(&app, segments);
    let platform = ring_platform(segments, 36);
    Psm::new(platform, app, alloc).expect("ring scenario validates")
}

fn gen_star(rng: &mut SmallRng) -> Psm {
    let spokes = rng.range_usize(3, 6);
    let mut app = Application::new(format!("star-{spokes}"))
        .with_cost_model(CostModel::affine(40, 36).expect("valid cost model"));
    let hub = app.add_process(Process::initial("HUB"));
    let workers: Vec<ProcessId> = (0..spokes)
        .map(|i| app.add_process(Process::new(format!("W{i}"))))
        .collect();
    let sink = app.add_process(Process::final_("SINK"));
    for &w in &workers {
        // Small configuration payload out, large result back.
        app.add_flow(Flow::new(
            hub,
            w,
            36 * rng.range_u64(1, 3),
            1,
            rng.range_u64(80, 200),
        ))
        .expect("star fan-out is valid");
        app.add_flow(Flow::new(
            w,
            sink,
            36 * rng.range_u64(6, 16),
            2,
            rng.range_u64(200, 450),
        ))
        .expect("star fan-in is valid");
    }
    sprinkle_noise(&mut app, rng, 0.4);
    let segments = rng.range_usize(2, 3);
    let alloc = round_robin_allocation(&app, segments);
    let platform = uniform_platform(segments, 36);
    Psm::new(platform, app, alloc).expect("star scenario validates")
}

fn gen_grid(rng: &mut SmallRng) -> Psm {
    // 100–156 processes. One or two packages per flow and light compute
    // keep the scenario cheap to emulate while making it communication-
    // dominated — the regime where the placement search's lower bound and
    // plan patching pay off.
    let width = rng.range_usize(10, 13);
    let height = rng.range_usize(10, 12);
    let mut app = grid(
        width,
        height,
        GeneratorConfig {
            items_per_flow: 36 * rng.range_u64(1, 2),
            ticks_per_package: rng.range_u64(20, 60),
        },
    );
    sprinkle_noise(&mut app, rng, 0.1);
    let segments = rng.range_usize(4, 6);
    let alloc = block_allocation(&app, segments);
    let platform = uniform_platform(segments, 36);
    Psm::new(platform, app, alloc).expect("grid scenario validates")
}

// ---------------------------------------------------------------------------
// corpus manifest and emission

/// The default seed manifest: what `segbus corpus gen` writes when the
/// corpus directory holds no `MANIFEST.txt` yet. The committed manifest is
/// the single source of truth afterwards — edit it, not this constant.
pub const DEFAULT_MANIFEST: &str = "\
# segbus corpus manifest — one `<family> <seed>` per line.
# `segbus corpus gen` renders each entry to corpus/<family>/<family>-s<seed>.sbd;
# `segbus corpus gen --check` re-renders and verifies byte-identity (CI).
mp3 1
mp3 2
mp3 3
video 1
video 2
video 3
telecom 1
telecom 2
telecom 4
ring 1
ring 2
star 1
star 2
grid 1
grid 2
";

/// Parse a manifest: `#` comments and blank lines are skipped, every other
/// line is `<family> <seed>`. Errors carry the 1-based line number.
pub fn parse_manifest(text: &str) -> Result<Vec<(Family, u64)>, String> {
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(fam), Some(seed), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("line {}: expected `<family> <seed>`", no + 1));
        };
        let family =
            Family::parse(fam).ok_or_else(|| format!("line {}: unknown family {fam:?}", no + 1))?;
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("line {}: {seed:?} is not a seed", no + 1))?;
        out.push((family, seed));
    }
    if out.is_empty() {
        return Err("manifest holds no entries".into());
    }
    Ok(out)
}

/// Relative path of one scenario inside the corpus tree.
pub fn scenario_path(family: Family, seed: u64) -> String {
    format!("{family}/{family}-s{seed}.sbd")
}

/// Render one scenario to its committed form: a provenance header plus the
/// canonical DSL. Newlines are `\n` on every platform (the corpus tree is
/// committed with `eol=lf`).
pub fn scenario_dsl(family: Family, seed: u64) -> String {
    format!(
        "// segbus corpus scenario — family {family}, seed {seed}.\n\
         // Generated by `segbus corpus gen`; edit corpus/MANIFEST.txt and\n\
         // regenerate instead of editing this file.\n\n{}",
        segbus_dsl::printer::to_dsl(&family.generate(seed))
    )
}

/// Render a whole manifest to `(relative path, contents)` pairs, in
/// manifest order.
pub fn generate_corpus(entries: &[(Family, u64)]) -> Vec<(String, String)> {
    entries
        .iter()
        .map(|&(f, s)| (scenario_path(f, s), scenario_dsl(f, s)))
        .collect()
}

/// Structural fingerprint of a scenario: the base model digest plus the
/// digest of its stochastic annotations. Two corpus files with equal
/// fingerprints describe the same system and the same noise — true
/// duplicates a minimisation pass may drop.
pub fn model_fingerprint(psm: &Psm) -> (u64, u64) {
    (psm.digest(), noise_digest(psm.application()))
}

// ---------------------------------------------------------------------------
// structure-aware mutation (fuzzing)

/// Structure-aware mutation of a `.sbd` source for the fuzz harness.
///
/// The input is first canonicalised through parse → print when it parses
/// (so line shapes are the printer's), then 1–3 grammar-level edits are
/// applied: numeric-literal perturbation, statement duplication /
/// deletion / swap, distribution injection (valid and deliberately
/// invalid) and distribution-keyword corruption. Unlike byte mutation the
/// result usually still lexes, steering the campaign at the parser's and
/// validator's semantic checks (P00x/V0xx/M0xx) instead of the tokenizer.
pub fn mutate_dsl(src: &str, rng: &mut SmallRng) -> String {
    let canon = match segbus_dsl::parse_system(src) {
        Ok(psm) => segbus_dsl::printer::to_dsl(&psm),
        Err(_) => src.to_string(),
    };
    let mut lines: Vec<String> = canon.lines().map(String::from).collect();
    if lines.is_empty() {
        return canon;
    }
    for _ in 0..rng.range_usize(1, 3) {
        let at = rng.range_usize(0, lines.len() - 1);
        match rng.below(6) {
            0 => perturb_number(&mut lines[at], rng),
            1 => {
                let dup = lines[at].clone();
                lines.insert(at, dup);
            }
            2 => {
                if lines.len() > 1 {
                    lines.remove(at);
                }
            }
            3 => {
                let other = rng.range_usize(0, lines.len() - 1);
                lines.swap(at, other);
            }
            4 => inject_dist(&mut lines, at, rng),
            _ => corrupt_dist(&mut lines[at], rng),
        }
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// Structure-aware mutation of an exported scheme document (`psdf.xml`
/// / `psm.xml`) for the fuzz harness.
///
/// The writer emits one element per line, so the same line-level edits
/// as [`mutate_dsl`] apply: numeric perturbation (which also reaches the
/// counts encoded in flow element names like `P1_576_1_250`),
/// duplication / deletion / swap, and injection or corruption of
/// distribution *attributes* (`itemsDist="uniform:300:400"`-style,
/// valid and deliberately invalid). Unlike byte mutation the result
/// usually stays well-formed XML, steering the campaign at the
/// importer's semantic checks (X00x) instead of the tag scanner.
pub fn mutate_xml(src: &str, rng: &mut SmallRng) -> String {
    let mut lines: Vec<String> = src.lines().map(String::from).collect();
    if lines.is_empty() {
        return src.to_string();
    }
    for _ in 0..rng.range_usize(1, 3) {
        let at = rng.range_usize(0, lines.len() - 1);
        match rng.below(6) {
            0 => perturb_number(&mut lines[at], rng),
            1 => {
                let dup = lines[at].clone();
                lines.insert(at, dup);
            }
            2 => {
                if lines.len() > 1 {
                    lines.remove(at);
                }
            }
            3 => {
                let other = rng.range_usize(0, lines.len() - 1);
                lines.swap(at, other);
            }
            4 => inject_xml_dist(&mut lines, at, rng),
            _ => corrupt_xml_dist(&mut lines, at, rng),
        }
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// Attach a distribution attribute (sometimes deliberately invalid) to
/// the first flow element — an `xs:element` carrying a `seq` attribute —
/// at or after `at`.
fn inject_xml_dist(lines: &mut [String], at: usize, rng: &mut SmallRng) {
    let Some(line) = lines[at..].iter_mut().find(|l| l.contains("seq=\"")) else {
        return;
    };
    let dist = match rng.below(6) {
        0 => format!(
            "itemsDist=\"uniform:{}:{}\" ",
            36 * rng.range_u64(1, 4),
            36 * rng.range_u64(5, 12)
        ),
        1 => format!("ticksDist=\"constant:{}\" ", rng.range_u64(1, 500)),
        2 => format!("jitter=\"choice:0:7:{}:1\" ", rng.range_u64(1, 60)),
        3 => "itemsDist=\"uniform:9:3\" ".to_string(), // inverted (X004)
        4 => "ticksDist=\"poisson:4\" ".to_string(),   // unknown kind (X004)
        _ => "itemsDist=\"constant:0\" ".to_string(),  // zero volume (X004)
    };
    if let Some(pos) = line.find("seq=\"") {
        line.insert_str(pos, &dist);
    }
}

/// Corrupt a distribution attribute in place; falls back to a numeric
/// perturbation when the line carries none.
fn corrupt_xml_dist(lines: &mut [String], at: usize, rng: &mut SmallRng) {
    let line = &mut lines[at];
    for (from, to) in [
        ("uniform:", "normal:"),
        ("normal:", "uniform:"),
        ("choice:", "constant:"),
        ("itemsDist=", "jitter="),
    ] {
        if line.contains(from) {
            *line = line.replacen(from, to, 1);
            return;
        }
    }
    perturb_number(line, rng);
}

/// Replace one decimal literal on the line with a boundary-seeking value.
fn perturb_number(line: &mut String, rng: &mut SmallRng) {
    let runs: Vec<(usize, usize)> = digit_runs(line);
    if runs.is_empty() {
        return;
    }
    let (start, end) = runs[rng.range_usize(0, runs.len() - 1)];
    let old: u64 = line[start..end].parse().unwrap_or(u64::MAX);
    let new = match rng.below(5) {
        0 => old.saturating_mul(2),
        1 => old / 2,
        2 => old.saturating_add(1),
        3 => 0,
        _ => u64::MAX,
    };
    line.replace_range(start..end, &new.to_string());
}

/// Byte ranges of the maximal ASCII-digit runs in `s`.
fn digit_runs(s: &str) -> Vec<(usize, usize)> {
    let bytes = s.as_bytes();
    let mut runs = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            runs.push((start, i));
        } else {
            i += 1;
        }
    }
    runs
}

/// Insert a distribution annotation (sometimes deliberately invalid) into
/// the first flow statement at or after `at`.
fn inject_dist(lines: &mut [String], at: usize, rng: &mut SmallRng) {
    let Some(line) = lines[at..]
        .iter_mut()
        .find(|l| l.contains("flow ") && l.trim_end().ends_with('}'))
    else {
        return;
    };
    let dist = match rng.below(6) {
        0 => format!(
            "items_dist uniform {} {}; ",
            36 * rng.range_u64(1, 4),
            36 * rng.range_u64(5, 12)
        ),
        1 => format!("ticks_dist constant {}; ", rng.range_u64(1, 500)),
        2 => format!("jitter choice 0 7 {} 1; ", rng.range_u64(1, 60)),
        3 => "items_dist uniform 9 3; ".to_string(), // inverted (P007)
        4 => "ticks_dist poisson 4; ".to_string(),   // unknown kind (P002)
        _ => "items_dist constant 0; ".to_string(),  // zero volume (P007)
    };
    if let Some(pos) = line.rfind('}') {
        line.insert_str(pos, &dist);
    }
}

/// Corrupt a distribution keyword in place; falls back to a numeric
/// perturbation when the line carries none.
fn corrupt_dist(line: &mut String, rng: &mut SmallRng) {
    for (from, to) in [
        ("uniform", "normal"),
        ("normal", "uniform"),
        ("choice", "constant"),
        ("items_dist", "jitter"),
    ] {
        if line.contains(from) {
            *line = line.replacen(from, to, 1);
            return;
        }
    }
    perturb_number(line, rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_valid_stochastic_scenarios() {
        for family in Family::ALL {
            for seed in 0..12 {
                let psm = family.generate(seed);
                assert!(
                    psm.application().is_stochastic(),
                    "{family} seed {seed} must carry noise"
                );
                // The committed form must parse back to the same system.
                let text = scenario_dsl(family, seed);
                let back = segbus_dsl::parse_system(&text)
                    .unwrap_or_else(|e| panic!("{family} seed {seed}: {e}"));
                assert_eq!(back.application(), psm.application());
                assert_eq!(back.platform(), psm.platform());
                assert_eq!(back.allocation(), psm.allocation());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        for family in Family::ALL {
            assert_eq!(scenario_dsl(family, 5), scenario_dsl(family, 5));
            assert_ne!(
                model_fingerprint(&family.generate(5)),
                model_fingerprint(&family.generate(6)),
                "{family}: different seeds must differ"
            );
        }
        // Families draw from split streams: same seed, different systems.
        assert_ne!(
            model_fingerprint(&Family::Ring.generate(1)),
            model_fingerprint(&Family::Star.generate(1)),
        );
    }

    #[test]
    fn default_manifest_parses_and_renders() {
        let entries = parse_manifest(DEFAULT_MANIFEST).unwrap();
        assert_eq!(entries.len(), 15);
        assert_eq!(entries[0], (Family::Mp3, 1));
        let corpus = generate_corpus(&entries);
        assert_eq!(corpus.len(), entries.len());
        assert!(corpus[0].0.ends_with("mp3/mp3-s1.sbd"));
        // Paths are unique; contents parse.
        let mut paths: Vec<&str> = corpus.iter().map(|(p, _)| p.as_str()).collect();
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(paths.len(), corpus.len());
        for (path, text) in &corpus {
            segbus_dsl::parse_system(text).unwrap_or_else(|e| panic!("{path}: {e}"));
        }
    }

    #[test]
    fn grid_family_is_large() {
        for seed in 0..4 {
            let psm = Family::Grid.generate(seed);
            assert!(
                psm.application().process_count() >= 100,
                "grid seed {seed}: only {} processes",
                psm.application().process_count()
            );
        }
    }

    #[test]
    fn manifest_rejects_malformed_lines() {
        assert!(parse_manifest("").is_err());
        assert!(parse_manifest("# only comments\n").is_err());
        assert!(parse_manifest("mp3\n").is_err());
        assert!(parse_manifest("mp3 1 extra\n").is_err());
        assert!(parse_manifest("jpeg 1\n").is_err());
        assert!(parse_manifest("mp3 notaseed\n").is_err());
        let ok = parse_manifest("# c\n\n  star 7  \n").unwrap();
        assert_eq!(ok, vec![(Family::Star, 7)]);
    }

    #[test]
    fn family_names_round_trip() {
        for family in Family::ALL {
            assert_eq!(Family::parse(family.name()), Some(family));
        }
        assert_eq!(Family::parse("jpeg"), None);
    }

    #[test]
    fn mutations_are_deterministic_and_structure_preserving() {
        let base = scenario_dsl(Family::Star, 1);
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        assert_eq!(mutate_dsl(&base, &mut a), mutate_dsl(&base, &mut b));
        // Over many draws the mutants must differ from the canonical form
        // and a healthy fraction must still parse (structure-aware, not
        // byte soup) while some get rejected (they probe the validators).
        let canon = segbus_dsl::printer::to_dsl(&segbus_dsl::parse_system(&base).unwrap());
        let mut rng = SmallRng::seed_from_u64(0x5EED);
        let (mut parsed, mut rejected, mut changed) = (0, 0, 0);
        for _ in 0..300 {
            let m = mutate_dsl(&base, &mut rng);
            if m != canon {
                changed += 1;
            }
            match segbus_dsl::parse_system(&m) {
                Ok(_) => parsed += 1,
                Err(e) => {
                    assert!(!e.code.is_empty(), "typed rejection required");
                    rejected += 1;
                }
            }
        }
        assert!(changed > 250, "mutator degenerated: {changed} changed");
        assert!(parsed > 30, "only {parsed}/300 mutants parsed");
        assert!(rejected > 30, "only {rejected}/300 mutants rejected");
    }

    #[test]
    fn xml_mutations_are_deterministic_and_structure_preserving() {
        let psm = segbus_dsl::parse_system(&scenario_dsl(Family::Star, 1)).unwrap();
        let base = segbus_xml::m2t::export_psdf(psm.application()).to_xml_string();
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        assert_eq!(mutate_xml(&base, &mut a), mutate_xml(&base, &mut b));
        // Mutants must mostly stay well-formed XML (structure-aware, not
        // byte soup) while a healthy fraction trips the importer's
        // semantic checks with typed X0xx/M0xx rejections.
        let mut rng = SmallRng::seed_from_u64(0x5EED);
        let (mut well_formed, mut rejected, mut changed) = (0, 0, 0);
        for _ in 0..300 {
            let m = mutate_xml(&base, &mut rng);
            if m != base {
                changed += 1;
            }
            match segbus_xml::parse(&m) {
                Ok(_) => well_formed += 1,
                Err(e) => {
                    assert!(!e.code.is_empty(), "typed rejection required");
                    rejected += 1;
                }
            }
        }
        assert!(changed > 250, "mutator degenerated: {changed} changed");
        // Line deletion/swap can break tag nesting, so well-formedness is
        // lower than the DSL mutator's parse rate — but a healthy share
        // of both outcomes keeps the campaign probing both layers.
        assert!(
            well_formed > 75,
            "only {well_formed}/300 stayed well-formed"
        );
        assert!(rejected > 75, "only {rejected}/300 were rejected");
    }

    #[test]
    fn xml_dist_injection_lands_on_flow_elements() {
        let psm = segbus_dsl::parse_system(&scenario_dsl(Family::Mp3, 0)).unwrap();
        let base = segbus_xml::m2t::export_psdf(psm.application()).to_xml_string();
        // Drive the mutator until an injected distribution shows up.
        let mut seen = false;
        for seed in 0..64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = mutate_xml(&base, &mut rng);
            // The deliberately-invalid injected shapes are unmistakable:
            // the generator never emits them on its own.
            if m.contains("poisson:4") || m.contains("uniform:9:3") || m.contains("constant:0") {
                seen = true;
                break;
            }
        }
        assert!(seen, "injection never produced a dist attribute");
    }

    #[test]
    fn mutator_survives_unparseable_input() {
        let mut rng = SmallRng::seed_from_u64(4);
        let out = mutate_dsl("application broken {", &mut rng);
        assert!(!out.is_empty());
        let out = mutate_dsl("", &mut rng);
        assert!(out.is_empty() || out == "\n");
    }
}
