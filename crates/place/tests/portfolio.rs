//! Determinism and equivalence properties of the portfolio search: the
//! result is bit-identical for any thread count, identical with
//! incremental evaluation disabled (the delta paths are exact), never
//! worse than the plain parallel fan-out it generalises, and a zero
//! wall-clock budget degenerates to exactly that fan-out.

use std::time::Duration;

use segbus_apps::generators::{grid, random_layered, GeneratorConfig};
use segbus_model::platform::Platform;
use segbus_model::time::ClockDomain;
use segbus_place::{Objective, PlaceTool};

fn uniform_platform(segments: usize) -> Platform {
    Platform::builder("portfolio-test")
        .uniform_segments(segments, ClockDomain::from_mhz(100.0))
        .build()
        .expect("valid platform")
}

#[test]
fn portfolio_is_thread_count_invariant_on_hop_objectives() {
    // Large enough that the exhaustive fast path never triggers.
    let app = random_layered(4, 4, 11, GeneratorConfig::default());
    let run = |threads: usize| {
        PlaceTool::new(&app, 3)
            .with_objective(Objective::Packages(12))
            .portfolio(threads)
            .with_restarts(3)
            .with_rounds(3)
            .best(7)
    };
    let reference = run(1);
    for threads in [2, 8] {
        assert_eq!(run(threads), reference, "{threads} threads diverged");
    }
}

#[test]
fn portfolio_is_thread_count_invariant_on_makespan() {
    let app = random_layered(3, 3, 5, GeneratorConfig::default());
    let platform = uniform_platform(2);
    let run = |threads: usize| {
        PlaceTool::new(&app, 2)
            .with_makespan(&platform)
            .portfolio(threads)
            .with_restarts(2)
            .with_rounds(3)
            .best(42)
    };
    let reference = run(1);
    for threads in [2, 8] {
        assert_eq!(run(threads), reference, "{threads} threads diverged");
    }
}

/// Incremental evaluation (plan patching, bound skips, delta digests)
/// must not change the trajectory: the portfolio lands on the same
/// placement with it disabled.
#[test]
fn portfolio_matches_the_rebuild_path_on_makespan() {
    let app = grid(5, 4, GeneratorConfig::default());
    let platform = uniform_platform(2);
    let run = |incremental: bool| {
        PlaceTool::new(&app, 2)
            .with_makespan(&platform)
            .with_incremental(incremental)
            .portfolio(2)
            .with_restarts(2)
            .with_rounds(2)
            .best(9)
    };
    assert_eq!(run(true), run(false));
}

/// Round 0 is exactly the `ParallelSearch` fan-out, and later rounds
/// only replace results that improve on it.
#[test]
fn portfolio_never_worse_than_the_parallel_fanout() {
    let app = random_layered(3, 3, 5, GeneratorConfig::default());
    let platform = uniform_platform(2);
    let fanout = PlaceTool::new(&app, 2)
        .with_makespan(&platform)
        .parallel(2)
        .with_restarts(3)
        .best(7);
    let portfolio = PlaceTool::new(&app, 2)
        .with_makespan(&platform)
        .portfolio(2)
        .with_restarts(3)
        .with_rounds(3)
        .best(7);
    assert!(portfolio.cost <= fanout.cost);
}

/// The wall-clock budget is consulted only at round boundaries: an
/// already-expired budget still runs round 0 and returns exactly the
/// plain fan-out result.
#[test]
fn zero_time_budget_still_runs_round_zero() {
    let app = random_layered(3, 3, 5, GeneratorConfig::default());
    let platform = uniform_platform(2);
    let port = PlaceTool::new(&app, 2)
        .with_makespan(&platform)
        .portfolio(1)
        .with_restarts(2)
        .with_rounds(5)
        .with_time_budget(Duration::ZERO);
    let result = port.best(7);
    assert_eq!(port.stats().rounds, 1);
    let fanout = PlaceTool::new(&app, 2)
        .with_makespan(&platform)
        .parallel(1)
        .with_restarts(2)
        .best(7);
    assert_eq!(result, fanout);
}
