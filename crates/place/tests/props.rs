//! Property tests for the placement solvers, driven by a seeded
//! [`SmallRng`] case stream (no external fuzzing dependency).

use segbus_apps::generators::{random_layered, GeneratorConfig};
use segbus_model::ids::{ProcessId, SegmentId};
use segbus_model::mapping::Allocation;
use segbus_model::platform::Topology;
use segbus_model::rng::SmallRng;
use segbus_place::{Objective, PlaceTool};

#[derive(Clone, Debug)]
struct Instance {
    layers: usize,
    width: usize,
    seed: u64,
    segments: usize,
    ring: bool,
    packages: bool,
}

fn arb_instance(rng: &mut SmallRng) -> Instance {
    let layers = rng.range_usize(2, 3);
    let width = rng.range_usize(1, 3);
    let seed = rng.below(500);
    let segments = rng.range_usize(1, 3).min(layers * width);
    let ring = rng.gen_bool(0.5) && segments >= 3;
    let packages = rng.gen_bool(0.5);
    Instance {
        layers,
        width,
        seed,
        segments,
        ring,
        packages,
    }
}

fn for_each_instance(test_seed: u64, cases: usize, check: impl Fn(&Instance)) {
    let mut rng = SmallRng::seed_from_u64(test_seed);
    for case in 0..cases {
        let inst = arb_instance(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&inst)));
        if let Err(e) = result {
            eprintln!("failing case {case}: {inst:?}");
            std::panic::resume_unwind(e);
        }
    }
}

fn tool<'a>(app: &'a segbus_model::psdf::Application, inst: &Instance) -> PlaceTool<'a> {
    let mut t = PlaceTool::new(app, inst.segments);
    if inst.ring {
        t = t.with_topology(Topology::Ring);
    }
    if inst.packages {
        t = t.with_objective(Objective::Packages(36));
    }
    t
}

/// Every solver returns a feasible allocation and agrees with cost().
#[test]
fn solvers_are_feasible() {
    for_each_instance(0x9_0001, 64, |inst| {
        let app = random_layered(
            inst.layers,
            inst.width,
            inst.seed,
            GeneratorConfig::default(),
        );
        let t = tool(&app, inst);
        for pl in [t.greedy(), t.best(inst.seed)] {
            assert!(t.feasible(&pl.allocation));
            assert_eq!(t.cost(&pl.allocation), pl.cost);
        }
    });
}

/// Refinement never worsens any feasible starting point.
#[test]
fn refine_is_monotone() {
    for_each_instance(0x9_0002, 64, |inst| {
        let app = random_layered(
            inst.layers,
            inst.width,
            inst.seed,
            GeneratorConfig::default(),
        );
        let t = tool(&app, inst);
        // Start from a round-robin layout (always feasible: every segment
        // is seeded because segments <= processes).
        let mut start = Allocation::new(inst.segments);
        for i in 0..app.process_count() {
            start.assign(ProcessId(i as u32), SegmentId((i % inst.segments) as u16));
        }
        let before = t.cost(&start);
        let refined = t.refine(start);
        assert!(refined.cost <= before);
    });
}

/// `best` never loses to plain greedy.
#[test]
fn best_dominates_greedy() {
    for_each_instance(0x9_0003, 64, |inst| {
        let app = random_layered(
            inst.layers,
            inst.width,
            inst.seed,
            GeneratorConfig::default(),
        );
        let t = tool(&app, inst);
        assert!(t.best(inst.seed).cost <= t.greedy().cost);
    });
}

/// Ring distances never exceed linear ones, so any allocation costs no
/// more on the ring.
#[test]
fn ring_cost_never_exceeds_linear() {
    for_each_instance(0x9_0004, 64, |inst| {
        if inst.segments < 3 {
            return;
        }
        let app = random_layered(
            inst.layers,
            inst.width,
            inst.seed,
            GeneratorConfig::default(),
        );
        let linear = PlaceTool::new(&app, inst.segments);
        let ring = PlaceTool::new(&app, inst.segments).with_topology(Topology::Ring);
        let pl = linear.greedy();
        assert!(ring.cost(&pl.allocation) <= linear.cost(&pl.allocation));
    });
}
