//! Property tests for the placement solvers.

use proptest::prelude::*;
use segbus_apps::generators::{random_layered, GeneratorConfig};
use segbus_model::ids::{ProcessId, SegmentId};
use segbus_model::mapping::Allocation;
use segbus_model::platform::Topology;
use segbus_place::{Objective, PlaceTool};

#[derive(Clone, Debug)]
struct Instance {
    layers: usize,
    width: usize,
    seed: u64,
    segments: usize,
    ring: bool,
    packages: bool,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (2usize..=3, 1usize..=3, 0u64..500, 1usize..=3, any::<bool>(), any::<bool>()).prop_map(
        |(layers, width, seed, segments, ring, packages)| {
            let n = layers * width;
            let segments = segments.min(n);
            Instance { layers, width, seed, segments, ring: ring && segments >= 3, packages }
        },
    )
}

fn tool<'a>(app: &'a segbus_model::psdf::Application, inst: &Instance) -> PlaceTool<'a> {
    let mut t = PlaceTool::new(app, inst.segments);
    if inst.ring {
        t = t.with_topology(Topology::Ring);
    }
    if inst.packages {
        t = t.with_objective(Objective::Packages(36));
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every solver returns a feasible allocation and agrees with cost().
    #[test]
    fn solvers_are_feasible(inst in arb_instance()) {
        let app = random_layered(inst.layers, inst.width, inst.seed, GeneratorConfig::default());
        let t = tool(&app, &inst);
        for pl in [t.greedy(), t.best(inst.seed)] {
            prop_assert!(t.feasible(&pl.allocation));
            prop_assert_eq!(t.cost(&pl.allocation), pl.cost);
        }
    }

    /// Refinement never worsens any feasible starting point.
    #[test]
    fn refine_is_monotone(inst in arb_instance()) {
        let app = random_layered(inst.layers, inst.width, inst.seed, GeneratorConfig::default());
        let t = tool(&app, &inst);
        // Start from a round-robin layout (always feasible: every segment
        // is seeded because segments <= processes).
        let mut start = Allocation::new(inst.segments);
        for i in 0..app.process_count() {
            start.assign(ProcessId(i as u32), SegmentId((i % inst.segments) as u16));
        }
        let before = t.cost(&start);
        let refined = t.refine(start);
        prop_assert!(refined.cost <= before);
    }

    /// `best` never loses to plain greedy.
    #[test]
    fn best_dominates_greedy(inst in arb_instance()) {
        let app = random_layered(inst.layers, inst.width, inst.seed, GeneratorConfig::default());
        let t = tool(&app, &inst);
        prop_assert!(t.best(inst.seed).cost <= t.greedy().cost);
    }

    /// Ring distances never exceed linear ones, so any allocation costs no
    /// more on the ring.
    #[test]
    fn ring_cost_never_exceeds_linear(inst in arb_instance()) {
        prop_assume!(inst.segments >= 3);
        let app = random_layered(inst.layers, inst.width, inst.seed, GeneratorConfig::default());
        let linear = PlaceTool::new(&app, inst.segments);
        let ring = PlaceTool::new(&app, inst.segments).with_topology(Topology::Ring);
        let pl = linear.greedy();
        prop_assert!(ring.cost(&pl.allocation) <= linear.cost(&pl.allocation));
    }
}
