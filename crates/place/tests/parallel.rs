//! Determinism and no-duplicate-work properties of the parallel
//! placement search: for any thread count the search must return the
//! identical `(cost, allocation)`, and the shared allocation-digest memo
//! must keep any candidate from being emulated twice.

use segbus_apps::generators::{chain, random_layered, GeneratorConfig};
use segbus_model::platform::Platform;
use segbus_model::rng::SmallRng;
use segbus_model::time::ClockDomain;
use segbus_place::{allocation_digest, Objective, PlaceTool};

const THREADS: [usize; 3] = [1, 2, 8];

fn uniform_platform(segments: usize) -> Platform {
    Platform::builder("t")
        .uniform_segments(segments, ClockDomain::from_mhz(100.0))
        .build()
        .unwrap()
}

/// `best` over the parallel path is thread-count invariant on the hop
/// objectives, across a handful of seeded random PSDF apps.
#[test]
fn best_is_thread_count_invariant_on_hop_objectives() {
    let mut rng = SmallRng::seed_from_u64(0xA_0001);
    for case in 0..12 {
        let layers = rng.range_usize(2, 4);
        let width = rng.range_usize(1, 3);
        let seed = rng.below(500);
        let segments = rng.range_usize(2, 3).min(layers * width);
        let app = random_layered(layers, width, seed, GeneratorConfig::default());
        let mut tool = PlaceTool::new(&app, segments);
        if rng.gen_bool(0.5) {
            tool = tool.with_objective(Objective::Packages(36));
        }
        let reference = tool.parallel(1).best(seed);
        assert!(tool.feasible(&reference.allocation));
        for threads in THREADS {
            let got = tool.parallel(threads).best(seed);
            assert_eq!(
                got, reference,
                "case {case}: threads {threads} diverged from the 1-thread result"
            );
        }
    }
}

/// `best` with emulation in the loop is thread-count invariant, and the
/// parallel result never loses to the sequential composed solver.
#[test]
fn best_is_thread_count_invariant_on_makespan() {
    for (n, segments, seed) in [(5, 2, 3u64), (6, 2, 7), (6, 3, 11)] {
        let app = chain(n, GeneratorConfig::default());
        let platform = uniform_platform(segments);
        let tool = PlaceTool::new(&app, segments).with_makespan(&platform);
        let reference = tool.parallel(1).best(seed);
        assert!(tool.feasible(&reference.allocation));
        assert_eq!(reference.cost, tool.cost(&reference.allocation));
        assert!(
            reference.cost <= tool.best(seed).cost,
            "parallel best must not lose to the sequential composition"
        );
        for threads in THREADS {
            assert_eq!(
                tool.parallel(threads).best(seed),
                reference,
                "n {n} segments {segments}: threads {threads} diverged"
            );
        }
    }
}

/// The sharded exhaustive search finds the sequential optimum cost for
/// every thread count, with the canonical tie-break making the
/// allocation itself thread-count invariant.
#[test]
fn parallel_exhaustive_matches_sequential_optimum() {
    let mut rng = SmallRng::seed_from_u64(0xA_0002);
    for _ in 0..8 {
        let layers = rng.range_usize(2, 3);
        let width = rng.range_usize(1, 2);
        let seed = rng.below(500);
        let segments = rng.range_usize(2, 3).min(layers * width);
        let app = random_layered(layers, width, seed, GeneratorConfig::default());
        let tool = PlaceTool::new(&app, segments);
        let sequential = tool.exhaustive().unwrap();
        let reference = tool.parallel(1).exhaustive().unwrap();
        assert_eq!(reference.cost, sequential.cost);
        for threads in THREADS {
            assert_eq!(tool.parallel(threads).exhaustive().unwrap(), reference);
        }
    }
}

/// A single-restart parallel anneal is the sequential anneal.
#[test]
fn anneal_with_one_restart_matches_sequential_anneal() {
    let app = chain(6, GeneratorConfig::default());
    let platform = uniform_platform(2);
    let tool = PlaceTool::new(&app, 2).with_makespan(&platform);
    let sequential = tool.anneal(17, 200);
    for threads in THREADS {
        let parallel = tool.parallel(threads).with_restarts(1).anneal(17, 200);
        assert_eq!(parallel, sequential, "threads {threads}");
    }
}

/// The shared memo's central guarantee: across all workers of a full
/// `best` run, no candidate allocation is ever emulated twice.
#[test]
fn shared_memo_records_zero_duplicate_emulations() {
    let app = chain(6, GeneratorConfig::default());
    let platform = uniform_platform(2);
    let tool = PlaceTool::new(&app, 2).with_makespan(&platform);
    for threads in THREADS {
        let search = tool.parallel(threads);
        let _ = search.best(42);
        let stats = search.stats();
        assert!(stats.emulations > 0, "the search must emulate something");
        assert_eq!(
            stats.duplicate_emulations, 0,
            "threads {threads}: a candidate was emulated twice"
        );
        // Every evaluation is accounted exactly once: answered by the
        // memo, rejected by the lower bound, or recorded as a new entry.
        assert_eq!(
            stats.memo_len as u64,
            stats.evaluations - stats.memo_hits - stats.bound_skips
        );
    }
}

/// A reused search answers a repeated run entirely from the shared memo.
#[test]
fn repeated_search_is_answered_by_the_memo() {
    let app = chain(6, GeneratorConfig::default());
    let platform = uniform_platform(2);
    let tool = PlaceTool::new(&app, 2).with_makespan(&platform);
    let search = tool.parallel(4);
    let first = search.best(42);
    let emulated = search.stats().emulations;
    let second = search.best(42);
    assert_eq!(first, second);
    assert_eq!(
        search.stats().emulations,
        emulated,
        "the repeat run must not emulate anything new"
    );
}

/// A warm `--cache-dir` answers a fresh search from disk: the second
/// search (new memo, new in-memory cache) emulates nothing.
#[test]
fn warm_cache_dir_answers_a_fresh_search_from_disk() {
    let dir = tempdir("place-warm");
    let app = chain(6, GeneratorConfig::default());
    let platform = uniform_platform(2);
    let tool = PlaceTool::new(&app, 2).with_makespan(&platform);

    let cold = tool.parallel(2).with_cache_dir(&dir).unwrap();
    let first = cold.best(42);
    assert!(cold.stats().emulations > 0);
    drop(cold);

    let warm = tool.parallel(2).with_cache_dir(&dir).unwrap();
    let second = warm.best(42);
    let stats = warm.stats();
    assert_eq!(first, second);
    assert_eq!(stats.emulations, 0, "warm dir must answer every candidate");
    assert!(stats.cache.disk_hits > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The canonical allocation digest separates placements and ignores
/// everything but the dense segment vector.
#[test]
fn allocation_digest_is_injective_on_small_slots() {
    let a = allocation_digest(&[0, 0, 1, 1]);
    assert_eq!(a, allocation_digest(&[0, 0, 1, 1]));
    assert_ne!(a, allocation_digest(&[0, 1, 0, 1]));
    assert_ne!(a, allocation_digest(&[0, 0, 1]));
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "segbus-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
