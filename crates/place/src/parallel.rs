//! Parallel placement search: the PlaceTool sharded over the
//! [`SweepPool`].
//!
//! The sequential solvers in the crate root evaluate one candidate at a
//! time against a private memo; once the engine itself is fast, the
//! search is the wall-clock bottleneck. [`ParallelSearch`] keeps the
//! solvers' *trajectories* bit-identical — every strategy is still the
//! deterministic sequential algorithm — but shards the independent units
//! of work across [`SweepPool`] workers:
//!
//! * **exhaustive** enumeration splits into prefix-partitioned
//!   sub-ranges: each shard fixes the segments of the first `depth`
//!   processes and walks the suffix odometer;
//! * **`best`** fans its independent starts (greedy → refine, KL →
//!   refine, `restarts` annealing chains → refine) out one-per-worker;
//! * **`anneal`** runs `restarts` seeded chains concurrently.
//!
//! All workers share one thread-safe **allocation-digest memo**: the
//! canonical allocation hash ([`allocation_digest`], mirroring the
//! `TAG_ALLOCATION` section of the name-insensitive `Psm::digest`) maps
//! to the emulated makespan, and an in-flight marker plus condvar makes a
//! worker *wait* for a candidate another worker is already emulating
//! instead of duplicating the run — no two workers ever emulate the same
//! candidate (the tests assert `duplicate_emulations == 0`).
//!
//! Misses fall through to the same memory → disk → emulate tier as
//! `segbus batch`/`serve`: evaluations are routed through a
//! [`CachedPool`] keyed by [`job_digest`], so with
//! [`ParallelSearch::with_cache_dir`] a repeated placement search warm-
//! starts from the `reports.sbc` produced by any of the three front ends.
//!
//! Results are deterministic for any thread count: the memo is a pure
//! cache of the deterministic cost function (sharing it cannot steer a
//! chain), every task is seeded, and winners are merged under a total
//! order — lower cost first, ties broken by the lexicographically
//! smallest dense segment vector (canonical allocation order).

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use segbus_core::{job_digest, job_digest_from, CacheStats, CachedPool, Engine, SweepPool};
use segbus_model::digest::Fnv64;
use segbus_model::ids::{ProcessId, SegmentId};
use segbus_model::mapping::{Allocation, Psm};

use crate::delta::{EvalBase, HopState, PatchOutcome, PatchState};
use crate::{CostEval, Objective, PlaceTool, Placement};

/// In-memory LRU capacity of the search's report cache. Placement
/// neighbourhoods revisit at most a few thousand distinct candidates per
/// run, so this comfortably holds a whole search; overflow spills to the
/// attached [`DiskStore`](segbus_core::DiskStore) when one is present.
const CACHE_CAPACITY: usize = 8192;

/// Canonical digest of a complete allocation: the `TAG_ALLOCATION`
/// section of the name-insensitive `Psm::digest` encoding (section tag,
/// process count, then each process's segment index), hashed with the
/// same [`Fnv64`]. `slots` is the dense segment-index vector in
/// `ProcessId` order. Two allocations collide only if they place every
/// process identically (up to FNV collision), independent of names.
pub fn allocation_digest(slots: &[u16]) -> u64 {
    // Keep in sync with TAG_ALLOCATION in segbus_model::digest.
    const TAG_ALLOCATION: u8 = 0x05;
    let mut h = Fnv64::new();
    h.write_u8(TAG_ALLOCATION);
    h.write_u64(slots.len() as u64);
    for &s in slots {
        h.write_u16(s);
    }
    h.finish()
}

/// Counters of one [`ParallelSearch`] (cumulative across runs).
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Makespan evaluations requested by the solvers.
    pub evaluations: u64,
    /// Evaluations answered by the shared allocation-digest memo.
    pub memo_hits: u64,
    /// Candidates actually emulated (memo and cache tiers all missed).
    pub emulations: u64,
    /// Emulation runs whose job digest had already been emulated — the
    /// shared memo's no-duplicate guarantee holds iff this stays `0`.
    pub duplicate_emulations: u64,
    /// Candidates rejected by the plan's admissible makespan lower bound
    /// without emulating (and without a memo entry — their exact cost is
    /// never computed). Every evaluation is accounted exactly once:
    /// `memo_len == evaluations − memo_hits − bound_skips`.
    pub bound_skips: u64,
    /// Successful plan remaps (one per process moved between consecutive
    /// candidates of an evaluator's patched [`segbus_core::EnginePlan`]).
    pub plan_patches: u64,
    /// Distinct allocations recorded in the memo.
    pub memo_len: usize,
    /// Counters of the underlying report cache (memory + disk tiers).
    pub cache: CacheStats,
}

/// Shared memo state: allocation digest → cost, with `None` marking a
/// candidate some worker is emulating right now.
#[derive(Default)]
struct MemoState {
    map: HashMap<u64, Option<u64>>,
    /// Job digests that went to the engine, for duplicate accounting.
    emulated: HashSet<u64>,
    duplicates: u64,
}

/// A parallel placement search over one [`PlaceTool`].
///
/// Construct with [`PlaceTool::parallel`]; the search owns a copy of the
/// tool, a [`SweepPool`], the shared memo, and the report cache, so it
/// can be reused across runs — a second `best` over the same instance
/// answers every candidate from the memo without emulating.
///
/// ```
/// use segbus_apps::generators::{chain, GeneratorConfig};
/// use segbus_place::PlaceTool;
///
/// let app = chain(6, GeneratorConfig::default());
/// let tool = PlaceTool::new(&app, 3);
/// let search = tool.parallel(4);
/// assert_eq!(search.best(42), tool.parallel(1).best(42)); // thread-count invariant
/// ```
pub struct ParallelSearch<'a> {
    pub(crate) tool: PlaceTool<'a>,
    pub(crate) pool: SweepPool,
    pub(crate) restarts: usize,
    memo: Mutex<MemoState>,
    done: Condvar,
    cache: Mutex<CachedPool>,
    /// `true` once a disk store is attached. A cold in-process search
    /// never hits the report-cache tiers (the allocation-digest memo
    /// already answers every repeat), so without disk the tier lookup
    /// and the per-report write-back clone are pure overhead and both
    /// are skipped.
    cache_tier: bool,
    evaluations: AtomicU64,
    memo_hits: AtomicU64,
    emulations: AtomicU64,
    bound_skips: AtomicU64,
    plan_patches: AtomicU64,
}

impl<'a> ParallelSearch<'a> {
    /// A search over `tool` on `threads` workers (`0` picks the machine
    /// parallelism), with the default three annealing restarts.
    pub fn new(tool: PlaceTool<'a>, threads: usize) -> ParallelSearch<'a> {
        let pool = if threads == 0 {
            SweepPool::new(tool.emu_config)
        } else {
            SweepPool::with_threads(tool.emu_config, threads)
        };
        ParallelSearch {
            tool,
            pool,
            restarts: 3,
            memo: Mutex::new(MemoState::default()),
            done: Condvar::new(),
            // The cache's own pool is unused here (workers emulate on
            // their sweep engines); one thread keeps it inert.
            cache: Mutex::new(CachedPool::with_pool(
                SweepPool::with_threads(tool.emu_config, 1),
                CACHE_CAPACITY,
            )),
            cache_tier: false,
            evaluations: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            emulations: AtomicU64::new(0),
            bound_skips: AtomicU64::new(0),
            plan_patches: AtomicU64::new(0),
        }
    }

    /// Number of annealing restarts fanned out by [`best`](Self::best)
    /// and [`anneal`](Self::anneal) (clamped to at least one; the
    /// sequential `best` uses three).
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Attach the persistent report store under `dir` (shared with
    /// `segbus batch`/`serve` via `--cache-dir`): cached makespans
    /// survive the process, and a warm directory answers repeated
    /// searches from disk instead of the emulator.
    pub fn with_cache_dir(mut self, dir: &Path) -> io::Result<Self> {
        self.cache.lock().unwrap().attach_disk(dir)?;
        self.cache_tier = true;
        Ok(self)
    }

    /// The worker cap.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The configured annealing restarts.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// The solver this search runs.
    pub fn tool(&self) -> &PlaceTool<'a> {
        &self.tool
    }

    /// Snapshot of the search counters (cumulative across runs).
    pub fn stats(&self) -> SearchStats {
        let memo = self.memo.lock().unwrap();
        SearchStats {
            evaluations: self.evaluations.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            emulations: self.emulations.load(Ordering::Relaxed),
            duplicate_emulations: memo.duplicates,
            bound_skips: self.bound_skips.load(Ordering::Relaxed),
            plan_patches: self.plan_patches.load(Ordering::Relaxed),
            memo_len: memo.map.len(),
            cache: self.cache.lock().unwrap().stats(),
        }
    }

    // -- solvers ------------------------------------------------------------

    /// Sharded exhaustive search; same contract as
    /// [`PlaceTool::exhaustive`] (`None` beyond ~20 million assignments
    /// or when no feasible allocation exists), ties broken by canonical
    /// allocation order regardless of which shard found the winner.
    pub fn exhaustive(&self) -> Option<Placement> {
        let n = self.tool.app.process_count();
        let k = self.tool.segments;
        let mut size: u64 = 1;
        for _ in 0..n {
            size = size.checked_mul(k as u64)?;
            if size > 20_000_000 {
                return None;
            }
        }
        // Prefix partitioning: fix the segments of the first `depth`
        // processes per shard, enough shards to keep every worker busy.
        // The candidate set is the full odometer regardless of `depth`,
        // so the thread count cannot change the result.
        let target = (self.pool.threads() * 8) as u64;
        let mut depth = 0usize;
        let mut shards = 1u64;
        while depth < n && shards < target {
            shards *= k as u64;
            depth += 1;
        }
        let prefixes: Vec<u64> = (0..shards).collect();
        let results = self.pool.sweep_with(&prefixes, |engine, &prefix| {
            let base = EvalBase::new(&self.tool);
            let mut eval = SharedEval::new(self, engine, &base);
            self.exhaustive_shard(&mut eval, prefix, depth)
        });
        let mut best: Option<(u64, Vec<u16>)> = None;
        for cand in results.into_iter().flatten() {
            if better(&cand, &best) {
                best = Some(cand);
            }
        }
        let (cost, slots) = best?;
        let mut alloc = Allocation::new(k);
        for (p, &s) in slots.iter().enumerate() {
            alloc.assign(ProcessId(p as u32), SegmentId(s));
        }
        Some(Placement {
            allocation: alloc,
            cost,
        })
    }

    /// One shard of the exhaustive odometer: processes `0..depth` pinned
    /// to the base-`k` digits of `prefix`, suffix enumerated in full.
    fn exhaustive_shard(
        &self,
        eval: &mut SharedEval<'_, '_, 'a>,
        prefix: u64,
        depth: usize,
    ) -> Option<(u64, Vec<u16>)> {
        let n = self.tool.app.process_count();
        let k = self.tool.segments;
        let mut assign = vec![0u16; n];
        let mut rest = prefix;
        for slot in assign.iter_mut().take(depth) {
            *slot = (rest % k as u64) as u16;
            rest /= k as u64;
        }
        let mut best: Option<(u64, Vec<u16>)> = None;
        'outer: loop {
            let mut alloc = Allocation::new(k);
            for (i, &s) in assign.iter().enumerate() {
                alloc.assign(ProcessId(i as u32), SegmentId(s));
            }
            if self.tool.feasible(&alloc) {
                let cand = (eval.cost(&alloc), assign.clone());
                if better(&cand, &best) {
                    best = Some(cand);
                }
            }
            // Advance the suffix odometer (positions depth..n).
            let mut i = depth;
            loop {
                if i == n {
                    break 'outer;
                }
                assign[i] += 1;
                if assign[i] as usize == k {
                    assign[i] = 0;
                    i += 1;
                } else {
                    break;
                }
            }
        }
        best
    }

    /// `restarts` seeded annealing chains fanned out over the pool; the
    /// chain seeds match the sequential `best` schedule
    /// (`seed + r·0x9e37_79b9`). Returns the canonical winner.
    pub fn anneal(&self, seed: u64, iterations: usize) -> Placement {
        let seeds: Vec<u64> = (0..self.restarts as u64)
            .map(|r| seed.wrapping_add(r.wrapping_mul(0x9e37_79b9)))
            .collect();
        let results = self.pool.sweep_with(&seeds, |engine, &s| {
            let base = EvalBase::new(&self.tool);
            let mut eval = SharedEval::new(self, engine, &base);
            self.tool.anneal_in(&mut eval, s, iterations)
        });
        self.merge(results).expect("restarts >= 1")
    }

    /// The parallel analogue of [`PlaceTool::best`]: exact search when
    /// the instance is small enough (hop objectives only), otherwise
    /// greedy → refine, KL → refine (when applicable), and `restarts`
    /// annealing chains → refine, all fanned out over the pool. The
    /// winner is the canonical minimum, so the result is identical for
    /// any thread count.
    pub fn best(&self, seed: u64) -> Placement {
        let n = self.tool.app.process_count();
        if self.tool.objective != Objective::Makespan
            && (self.tool.segments as f64).powi(n as i32) <= 250_000.0
        {
            if let Some(p) = self.exhaustive() {
                return p;
            }
        }
        let iterations = self.tool.best_iterations();
        let mut tasks = vec![Task::Greedy];
        if self.tool.kl_applicable() {
            tasks.push(Task::Kl);
        }
        for r in 0..self.restarts as u64 {
            tasks.push(Task::Anneal(seed.wrapping_add(r.wrapping_mul(0x9e37_79b9))));
        }
        let results = self.pool.sweep_with(&tasks, |engine, task| {
            let base = EvalBase::new(&self.tool);
            let mut eval = SharedEval::new(self, engine, &base);
            match *task {
                Task::Greedy => self
                    .tool
                    .refine_in(&mut eval, self.tool.greedy_allocation()),
                Task::Kl => self.tool.refine_in(&mut eval, self.tool.kl_allocation()),
                Task::Anneal(s) => {
                    let a = self.tool.anneal_in(&mut eval, s, iterations);
                    self.tool.refine_in(&mut eval, a.allocation)
                }
            }
        });
        self.merge(results).expect("the greedy task always runs")
    }

    /// Canonical winner of a set of finished placements: lowest cost,
    /// ties broken by the lexicographically smallest segment vector.
    pub(crate) fn merge(&self, candidates: Vec<Placement>) -> Option<Placement> {
        let mut best: Option<(u64, Vec<u16>)> = None;
        for p in candidates {
            let cand = (p.cost, self.tool.slots(&p.allocation));
            if better(&cand, &best) {
                best = Some(cand);
            }
        }
        let (cost, slots) = best?;
        let mut alloc = Allocation::new(self.tool.segments);
        for (p, &s) in slots.iter().enumerate() {
            alloc.assign(ProcessId(p as u32), SegmentId(s));
        }
        Some(Placement {
            allocation: alloc,
            cost,
        })
    }

    // -- shared evaluation --------------------------------------------------

    /// Makespan of a candidate through the shared memo and cache tiers,
    /// or `None` when `threshold` is set and the patched plan's
    /// admissible lower bound proves the candidate cannot beat it. Pure
    /// up to the skip: an answered cost never depends on which worker
    /// asks, or when, and a skip only suppresses candidates no solver
    /// would have accepted.
    fn shared_cost(
        &self,
        engine: &mut Engine,
        patch: &mut PatchState<'_>,
        alloc: &Allocation,
        threshold: Option<u64>,
    ) -> Option<u64> {
        if self.tool.objective != Objective::Makespan {
            return Some(self.tool.hop_cost(alloc));
        }
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let mut outcome = patch.prepare(&self.tool, alloc);
        let key = allocation_digest(patch.cand());
        // First memo pass, without claiming the candidate — a bound skip
        // must not leave an in-flight marker behind.
        {
            let mut memo = self.memo.lock().unwrap();
            loop {
                match memo.map.get(&key) {
                    Some(Some(c)) => {
                        self.memo_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(*c);
                    }
                    // Another worker is emulating this exact candidate:
                    // wait for its answer instead of duplicating the run.
                    Some(None) => memo = self.done.wait(memo).unwrap(),
                    None => break,
                }
            }
        }
        // Memo miss: only now patch the plan onto the candidate — the
        // hits above never pay the remap work.
        if outcome == PatchOutcome::Ready {
            outcome = patch.patch();
            self.plan_patches
                .fetch_add(patch.take_patches(), Ordering::Relaxed);
        }
        if let (PatchOutcome::Ready, Some(incumbent)) = (outcome, threshold) {
            if patch.lower_bound(&self.tool) >= incumbent {
                // Provably no better than the incumbent: skip the
                // emulation. Not memoised — the exact cost is unknown.
                self.bound_skips.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        // Claim the candidate: re-check under the lock, since another
        // worker may have claimed or finished it during the bound check.
        {
            let mut memo = self.memo.lock().unwrap();
            loop {
                match memo.map.get(&key) {
                    Some(Some(c)) => {
                        self.memo_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(*c);
                    }
                    Some(None) => memo = self.done.wait(memo).unwrap(),
                    None => {
                        memo.map.insert(key, None);
                        break;
                    }
                }
            }
        }
        let c = match outcome {
            // Empty segment or unroutable move: same `u64::MAX` the
            // model-rebuild path reports for a PSM failing validation.
            PatchOutcome::Infeasible => u64::MAX,
            PatchOutcome::NoPlan => self.compute_rebuilt(engine, alloc),
            PatchOutcome::Ready => self.compute_patched(engine, patch),
        };
        self.memo.lock().unwrap().map.insert(key, Some(c));
        self.done.notify_all();
        Some(c)
    }

    /// Memo-miss path on the patched plan: memory → disk → emulate, with
    /// the candidate's job digest derived incrementally from the base
    /// model's digest prefix (equal to the digest of the rebuilt model,
    /// so warm `segbus batch`/`serve` caches keep hitting). Holds the
    /// cache lock only around the tier lookup and the write-back — never
    /// across the emulation itself.
    fn compute_patched(&self, engine: &mut Engine, patch: &mut PatchState<'_>) -> u64 {
        let digest = job_digest_from(patch.psm_digest(), &self.tool.emu_config, 1);
        if self.cache_tier {
            if let Some(report) = self.cache.lock().unwrap().lookup(digest) {
                return report.makespan.0;
            }
        }
        {
            let mut memo = self.memo.lock().unwrap();
            if !memo.emulated.insert(digest) {
                memo.duplicates += 1;
            }
        }
        self.emulations.fetch_add(1, Ordering::Relaxed);
        let makespan = patch.run(engine);
        if self.cache_tier {
            self.cache.lock().unwrap().insert(digest, patch.report());
        }
        makespan
    }

    /// Memo-miss fallback when no base plan exists (the instance cannot
    /// form a valid PSM): rebuild the model per candidate, exactly as
    /// before plan patching.
    fn compute_rebuilt(&self, engine: &mut Engine, alloc: &Allocation) -> u64 {
        let platform = self
            .tool
            .platform
            .expect("Objective::Makespan is only set together with a platform");
        let psm = match Psm::new(platform.clone(), self.tool.app.clone(), alloc.clone()) {
            Ok(psm) => psm,
            Err(_) => return u64::MAX,
        };
        let digest = job_digest(&psm, &self.tool.emu_config, 1);
        if self.cache_tier {
            if let Some(report) = self.cache.lock().unwrap().lookup(digest) {
                return report.makespan.0;
            }
        }
        {
            let mut memo = self.memo.lock().unwrap();
            if !memo.emulated.insert(digest) {
                memo.duplicates += 1;
            }
        }
        self.emulations.fetch_add(1, Ordering::Relaxed);
        match engine.try_run(&psm) {
            Ok(report) => {
                let makespan = report.makespan.0;
                if self.cache_tier {
                    self.cache.lock().unwrap().insert(digest, &report);
                }
                makespan
            }
            Err(_) => u64::MAX,
        }
    }
}

/// One independent start of the composed `best` search.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Task {
    /// Greedy constructive start, then refine.
    Greedy,
    /// Kernighan–Lin bipartition start, then refine.
    Kl,
    /// A seeded annealing chain, then refine.
    Anneal(u64),
}

/// `true` if `cand` beats `best` under the canonical total order.
pub(crate) fn better(cand: &(u64, Vec<u16>), best: &Option<(u64, Vec<u16>)>) -> bool {
    match best {
        None => true,
        Some((c, s)) => cand.0 < *c || (cand.0 == *c && cand.1 < *s),
    }
}

/// Worker-local view of the shared evaluation state: the solvers see a
/// plain [`CostEval`]; the engine, the incremental hop state and the
/// patched plan stay worker-private, while memoisation and the cache
/// tiers go through [`ParallelSearch::shared_cost`].
pub(crate) struct SharedEval<'x, 'b, 'a> {
    search: &'x ParallelSearch<'a>,
    engine: &'x mut Engine,
    hop: Option<HopState>,
    patch: PatchState<'b>,
}

impl<'x, 'b, 'a> SharedEval<'x, 'b, 'a> {
    /// A worker-local evaluator over `search`, compiling its patchable
    /// plan from the caller-owned `base`.
    pub(crate) fn new(
        search: &'x ParallelSearch<'a>,
        engine: &'x mut Engine,
        base: &'b EvalBase,
    ) -> SharedEval<'x, 'b, 'a> {
        SharedEval {
            hop: (search.tool.incremental && search.tool.objective != Objective::Makespan)
                .then(|| HopState::new(&search.tool)),
            patch: PatchState::new(&search.tool, base),
            search,
            engine,
        }
    }
}

impl CostEval for SharedEval<'_, '_, '_> {
    fn cost(&mut self, alloc: &Allocation) -> u64 {
        if self.search.tool.objective != Objective::Makespan {
            return match self.hop.as_mut() {
                Some(hop) => hop.cost(&self.search.tool, alloc),
                None => self.search.tool.hop_cost(alloc),
            };
        }
        self.search
            .shared_cost(self.engine, &mut self.patch, alloc, None)
            .expect("exact evaluation never bound-skips")
    }

    fn cost_if_below(&mut self, alloc: &Allocation, incumbent: u64) -> Option<u64> {
        if self.search.tool.objective != Objective::Makespan {
            return Some(self.cost(alloc));
        }
        let threshold = self.search.tool.incremental.then_some(incumbent);
        self.search
            .shared_cost(self.engine, &mut self.patch, alloc, threshold)
    }
}
