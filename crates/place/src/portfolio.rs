//! Portfolio placement search: heterogeneous solver families racing over
//! one shared evaluation substrate.
//!
//! [`ParallelSearch::best`] fans its independent starts out once and
//! merges at the end; each family explores alone and a family stuck in a
//! poor basin wastes its whole budget there. [`Portfolio`] keeps the same
//! family roster — greedy → refine, Kernighan–Lin → refine (when
//! applicable), `restarts` annealing chains → refine — but runs it in
//! **synchronous rounds** over the shared allocation-digest memo and a
//! shared incumbent:
//!
//! * **Round 0** is exactly the `ParallelSearch::best` fan-out (same
//!   seeds, same trajectories).
//! * After every round the family results are merged under the canonical
//!   total order (lowest cost, ties broken by the lexicographically
//!   smallest segment vector) into the **global incumbent**.
//! * In round `r ≥ 1` every family continues as a freshly seeded
//!   annealing chain + refine. A family whose own best is *stale* —
//!   strictly worse than the incumbent — restarts from the incumbent
//!   instead (cross-pollination); the others keep exploring their own
//!   basin.
//! * The portfolio stops early once a round fails to improve the
//!   incumbent's cost, and always after [`Portfolio::with_rounds`]
//!   rounds or past the optional wall-clock budget.
//!
//! **Determinism.** Results are bit-identical for any thread count: every
//! chain is seeded by `(seed, family, round)` alone, the shared memo is a
//! pure cache of the deterministic cost function, and every decision that
//! shapes the search — staleness, restart points, the stop rule — reads
//! only the *round-merged* state at a barrier, never the live atomic
//! incumbent (which workers update mid-round purely for observability).
//! The wall-clock budget is likewise only consulted at round boundaries,
//! so it can truncate the round sequence but never change the result of
//! the rounds that did run. The full argument lives in DESIGN.md §16.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use segbus_model::ids::{ProcessId, SegmentId};
use segbus_model::mapping::Allocation;

use crate::delta::EvalBase;
use crate::parallel::{better, SearchStats, SharedEval, Task};
use crate::{Objective, ParallelSearch, PlaceTool, Placement};

/// Counters of one [`Portfolio`] (cumulative across runs): the underlying
/// shared-evaluation counters plus the round bookkeeping.
#[derive(Clone, Copy, Debug, Default)]
pub struct PortfolioStats {
    /// The shared evaluation substrate's counters (memo, cache tiers,
    /// bound skips, plan patches).
    pub search: SearchStats,
    /// Synchronous rounds completed.
    pub rounds: u64,
    /// Family restarts from the global incumbent (stale families
    /// re-seeded at a round boundary).
    pub cross_pollinations: u64,
}

/// A round-based portfolio search over one [`PlaceTool`].
///
/// Construct with [`PlaceTool::portfolio`]. The portfolio owns a
/// [`ParallelSearch`] (pool, shared memo, cache tiers) and reuses it
/// across rounds and across runs.
///
/// ```
/// use segbus_apps::generators::{chain, GeneratorConfig};
/// use segbus_place::PlaceTool;
///
/// let app = chain(6, GeneratorConfig::default());
/// let tool = PlaceTool::new(&app, 3);
/// let portfolio = tool.portfolio(4).with_rounds(2);
/// assert_eq!(portfolio.best(42), tool.portfolio(1).with_rounds(2).best(42));
/// ```
pub struct Portfolio<'a> {
    search: ParallelSearch<'a>,
    rounds: usize,
    time_budget: Option<Duration>,
    /// Live lowest cost seen by any worker (observability only — round
    /// decisions read the merged state, see the module docs).
    incumbent_cost: AtomicU64,
    rounds_run: AtomicU64,
    cross_pollinations: AtomicU64,
}

/// One family's continuation in a round `r ≥ 1`: a seeded annealing
/// chain + refine from an explicit start.
struct Chain {
    start: Vec<u16>,
    seed: u64,
}

/// The seed of family `family`'s chain in round `round`; depends on
/// nothing else, so trajectories are thread-count independent.
fn chain_seed(seed: u64, family: u64, round: u64) -> u64 {
    seed.wrapping_add(family.wrapping_mul(0x9e37_79b9))
        .wrapping_add(round.wrapping_mul(0x85eb_ca6b))
}

impl<'a> Portfolio<'a> {
    /// Default maximum number of synchronous rounds.
    pub const DEFAULT_ROUNDS: usize = 3;

    /// A portfolio over `tool` on `threads` workers (`0` picks the
    /// machine parallelism), with the default three annealing chains and
    /// [`Portfolio::DEFAULT_ROUNDS`] rounds.
    pub fn new(tool: PlaceTool<'a>, threads: usize) -> Portfolio<'a> {
        Portfolio {
            search: ParallelSearch::new(tool, threads),
            rounds: Self::DEFAULT_ROUNDS,
            time_budget: None,
            incumbent_cost: AtomicU64::new(u64::MAX),
            rounds_run: AtomicU64::new(0),
            cross_pollinations: AtomicU64::new(0),
        }
    }

    /// Maximum number of synchronous rounds (clamped to at least one;
    /// the portfolio may stop earlier when a round fails to improve the
    /// incumbent). One round is exactly [`ParallelSearch::best`].
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds.max(1);
        self
    }

    /// Stop starting new rounds once `budget` wall-clock time has
    /// elapsed. Checked only at round boundaries, so the budget bounds
    /// *how many* rounds run (machine-dependent) without ever changing
    /// the result of the rounds that do run.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Number of annealing-chain families (clamped to at least one).
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.search = self.search.with_restarts(restarts);
        self
    }

    /// Attach the persistent report store under `dir`; see
    /// [`ParallelSearch::with_cache_dir`].
    pub fn with_cache_dir(mut self, dir: &Path) -> io::Result<Self> {
        self.search = self.search.with_cache_dir(dir)?;
        Ok(self)
    }

    /// The worker cap.
    pub fn threads(&self) -> usize {
        self.search.threads()
    }

    /// The solver this portfolio runs.
    pub fn tool(&self) -> &PlaceTool<'a> {
        self.search.tool()
    }

    /// Snapshot of the portfolio counters (cumulative across runs).
    pub fn stats(&self) -> PortfolioStats {
        PortfolioStats {
            search: self.search.stats(),
            rounds: self.rounds_run.load(Ordering::Relaxed),
            cross_pollinations: self.cross_pollinations.load(Ordering::Relaxed),
        }
    }

    /// Run the portfolio. Deterministic in `(seed, rounds, restarts)`
    /// for any thread count; never worse than [`ParallelSearch::best`]
    /// with the same seed and restarts, since round 0 is exactly that
    /// fan-out and later rounds only replace results that improve on it.
    pub fn best(&self, seed: u64) -> Placement {
        let tool = &self.search.tool;
        let n = tool.app.process_count();
        // Tiny hop-objective instances: exact enumeration, as `best`.
        if tool.objective != Objective::Makespan
            && (tool.segments as f64).powi(n as i32) <= 250_000.0
        {
            if let Some(p) = self.search.exhaustive() {
                return p;
            }
        }
        let started = Instant::now();
        let iterations = tool.best_iterations();

        // The family roster, in fixed order. Round 0 mirrors the
        // `ParallelSearch::best` fan-out, seeds included.
        let mut families = vec![Task::Greedy];
        if tool.kl_applicable() {
            families.push(Task::Kl);
        }
        for r in 0..self.search.restarts as u64 {
            families.push(Task::Anneal(seed.wrapping_add(r.wrapping_mul(0x9e37_79b9))));
        }
        let results = self.search.pool.sweep_with(&families, |engine, task| {
            let base = EvalBase::new(tool);
            let mut eval = SharedEval::new(&self.search, engine, &base);
            let p = match *task {
                Task::Greedy => tool.refine_in(&mut eval, tool.greedy_allocation()),
                Task::Kl => tool.refine_in(&mut eval, tool.kl_allocation()),
                Task::Anneal(s) => {
                    let a = tool.anneal_in(&mut eval, s, iterations);
                    tool.refine_in(&mut eval, a.allocation)
                }
            };
            self.incumbent_cost.fetch_min(p.cost, Ordering::Relaxed);
            p
        });

        // Per-family best-so-far, and the round-merged global incumbent.
        let mut family_state: Vec<(u64, Vec<u16>)> = results
            .into_iter()
            .map(|p| (p.cost, tool.slots(&p.allocation)))
            .collect();
        let mut incumbent: Option<(u64, Vec<u16>)> = None;
        for st in &family_state {
            if better(st, &incumbent) {
                incumbent = Some(st.clone());
            }
        }
        let mut incumbent = incumbent.expect("the greedy family always runs");
        let mut rounds_run = 1u64;
        let mut cross = 0u64;

        for round in 1..self.rounds {
            if self
                .time_budget
                .is_some_and(|budget| started.elapsed() >= budget)
            {
                break;
            }
            let chains: Vec<Chain> = family_state
                .iter()
                .enumerate()
                .map(|(i, st)| {
                    let stale = st.0 > incumbent.0;
                    if stale {
                        cross += 1;
                    }
                    Chain {
                        start: if stale {
                            incumbent.1.clone()
                        } else {
                            st.1.clone()
                        },
                        seed: chain_seed(seed, i as u64, round as u64),
                    }
                })
                .collect();
            let results = self.search.pool.sweep_with(&chains, |engine, chain| {
                let base = EvalBase::new(tool);
                let mut eval = SharedEval::new(&self.search, engine, &base);
                let mut alloc = Allocation::new(tool.segments);
                for (p, &s) in chain.start.iter().enumerate() {
                    alloc.assign(ProcessId(p as u32), SegmentId(s));
                }
                let a = tool.anneal_from(&mut eval, alloc, chain.seed, iterations);
                let p = tool.refine_in(&mut eval, a.allocation);
                self.incumbent_cost.fetch_min(p.cost, Ordering::Relaxed);
                p
            });
            // Deterministic merge at the barrier: each family keeps its
            // best-so-far, then the incumbent is re-folded in family
            // order under the canonical total order.
            for (i, p) in results.into_iter().enumerate() {
                let cand = (p.cost, tool.slots(&p.allocation));
                if better(&cand, &Some(family_state[i].clone())) {
                    family_state[i] = cand;
                }
            }
            let prev_cost = incumbent.0;
            for st in &family_state {
                if better(st, &Some(incumbent.clone())) {
                    incumbent = st.clone();
                }
            }
            rounds_run += 1;
            // Converged: the round bought no cost improvement.
            if incumbent.0 >= prev_cost {
                break;
            }
        }

        self.rounds_run.fetch_add(rounds_run, Ordering::Relaxed);
        self.cross_pollinations.fetch_add(cross, Ordering::Relaxed);
        let (cost, slots) = incumbent;
        let mut alloc = Allocation::new(tool.segments);
        for (p, &s) in slots.iter().enumerate() {
            alloc.assign(ProcessId(p as u32), SegmentId(s));
        }
        Placement {
            allocation: alloc,
            cost,
        }
    }
}
