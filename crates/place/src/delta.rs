//! Incremental (delta) cost evaluation for the placement solvers.
//!
//! The solvers walk move/swap neighbourhoods: consecutive candidates
//! differ in the placement of one or two processes. Re-deriving the
//! objective from scratch per candidate — a full flow sweep for the hop
//! objectives, a model rebuild + plan compile + emulation for
//! [`Objective::Makespan`] — caps the search at graphs of a dozen
//! processes. This module maintains the evaluation state *across*
//! candidates instead:
//!
//! * [`HopState`] keeps the hop-weighted traffic sum and per-process
//!   flow adjacency, so a candidate costs one O(processes) slot diff
//!   plus O(degree) flow re-weighings — exactly equal (same integer
//!   additions and subtractions) to the full [`PlaceTool::cost`] sweep,
//!   which the property tests pin across arbitrary move/swap sequences.
//! * [`PatchState`] keeps a compiled [`EnginePlan`] of a base model and
//!   *patches* it per candidate via [`EnginePlan::try_remap`] (O(degree)
//!   per moved process), runs it with a reused report buffer, derives
//!   the candidate's content digest incrementally from the base model's
//!   [`Psm::digest_prefix`], and offers the plan's admissible
//!   [`EnginePlan::makespan_lower_bound`] so callers can skip emulating
//!   candidates that provably cannot beat an incumbent.
//!
//! Both are exact caches of the same deterministic cost functions the
//! non-incremental paths compute; the solvers' trajectories are
//! bit-identical with or without them.

use segbus_core::{EmulationReport, Engine, EnginePlan, LowerBoundScratch};
use segbus_model::digest::{digest_with_slots, Fnv64};
use segbus_model::ids::{ProcessId, SegmentId};
use segbus_model::mapping::{Allocation, Psm};

use crate::{Objective, PlaceTool};

/// The base model a makespan evaluator compiles its patchable plan from:
/// the tool's platform + application under the (feasible) greedy
/// allocation, validated once. `None` when the instance cannot form a
/// valid PSM at all — evaluators then fall back to the per-candidate
/// model-rebuild path, which reports the same typed failures candidate
/// by candidate.
pub(crate) struct EvalBase {
    pub(crate) psm: Option<Psm>,
}

impl EvalBase {
    /// Build (and strictly validate) the base model. Cheap no-op for the
    /// hop objectives, which never emulate, and when
    /// [`PlaceTool::with_incremental`] disabled incremental evaluation.
    pub(crate) fn new(tool: &PlaceTool) -> EvalBase {
        if !tool.incremental || tool.objective != Objective::Makespan {
            return EvalBase { psm: None };
        }
        let platform = tool
            .platform
            .expect("Objective::Makespan is only set together with a platform");
        let alloc = tool.greedy_allocation();
        let psm = match Psm::new(platform.clone(), tool.app.clone(), alloc) {
            Ok(psm) => psm,
            Err(_) => return EvalBase { psm: None },
        };
        if segbus_core::strict_validate(&psm, 1, &tool.emu_config).is_err() {
            return EvalBase { psm: None };
        }
        EvalBase { psm: Some(psm) }
    }
}

/// What [`PatchState::prepare`] concluded about a candidate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum PatchOutcome {
    /// The plan now describes the candidate; run or bound it.
    Ready,
    /// The candidate cannot be emulated (empty segment or unroutable
    /// move) — its cost is `u64::MAX`, same as the model-rebuild path.
    Infeasible,
    /// No base plan exists; evaluate through the legacy per-candidate
    /// model rebuild.
    NoPlan,
}

/// Plan-patching state for [`Objective::Makespan`] evaluation: the
/// compiled plan of the base model, the slot vector it currently
/// describes, the base digest prefix, and a reused report buffer.
pub(crate) struct PatchState<'b> {
    plan: Option<EnginePlan<'b>>,
    /// The allocation `plan` currently describes.
    slots: Vec<u16>,
    /// Allocation-independent digest prefix of the base model.
    prefix: Fnv64,
    /// Reused across runs by [`Engine::run_plan_into`].
    report: EmulationReport,
    /// Candidate slots loaded by the last [`PatchState::prepare`].
    cand: Vec<u16>,
    seg_count: Vec<u32>,
    /// Reused by [`PatchState::lower_bound`].
    lb_scratch: LowerBoundScratch,
    /// Successful [`EnginePlan::try_remap`] calls (one per moved
    /// process), surfaced as `plan_patches` in the search stats.
    pub(crate) patches: u64,
}

impl<'b> PatchState<'b> {
    pub(crate) fn new(tool: &PlaceTool, base: &'b EvalBase) -> PatchState<'b> {
        let n = tool.app.process_count();
        let (plan, slots) = match &base.psm {
            Some(psm) => match EnginePlan::try_new(psm) {
                Ok(plan) => {
                    let slots = (0..n as u32)
                        .map(|p| plan.segment_of(ProcessId(p)).0)
                        .collect();
                    (Some(plan), slots)
                }
                Err(_) => (None, Vec::new()),
            },
            None => (None, Vec::new()),
        };
        let prefix = base
            .psm
            .as_ref()
            .map(|p| p.digest_prefix())
            .unwrap_or_default();
        PatchState {
            plan,
            slots,
            prefix,
            report: EmulationReport::empty(),
            cand: Vec::with_capacity(n),
            seg_count: vec![0; tool.segments],
            lb_scratch: LowerBoundScratch::default(),
            patches: 0,
        }
    }

    /// Load the candidate's slots and classify it — **without** touching
    /// the plan. `Ready` here means "patchable": callers answer the memo
    /// first (via [`PatchState::cand`]'s digest) and call
    /// [`PatchState::patch`] only on a miss, so memo hits never pay the
    /// remap work.
    pub(crate) fn prepare(&mut self, tool: &PlaceTool, alloc: &Allocation) -> PatchOutcome {
        let n = tool.app.process_count();
        self.seg_count.iter_mut().for_each(|c| *c = 0);
        self.cand.clear();
        for p in 0..n as u32 {
            let s = alloc.segment_of_checked(ProcessId(p)).0;
            self.cand.push(s);
            self.seg_count[s as usize] += 1;
        }
        // An empty segment fails PSM validation (V005): cost `u64::MAX`,
        // exactly as the model-rebuild path would report.
        if self.seg_count.contains(&0) {
            return PatchOutcome::Infeasible;
        }
        if self.plan.is_none() {
            return PatchOutcome::NoPlan;
        }
        PatchOutcome::Ready
    }

    /// Patch the plan to describe the candidate loaded by the last
    /// [`PatchState::prepare`] (which must have returned `Ready`). After
    /// `Ready`, [`PatchState::run`] and [`PatchState::lower_bound`]
    /// refer to this candidate.
    pub(crate) fn patch(&mut self) -> PatchOutcome {
        let plan = self.plan.as_mut().expect("patch needs a prepared plan");
        for p in 0..self.cand.len() {
            if self.slots[p] != self.cand[p] {
                match plan.try_remap(ProcessId(p as u32), SegmentId(self.cand[p])) {
                    Ok(_) => {
                        self.slots[p] = self.cand[p];
                        self.patches += 1;
                    }
                    // Unroutable move: the plan keeps describing
                    // `self.slots`; the candidate can never win.
                    Err(_) => return PatchOutcome::Infeasible,
                }
            }
        }
        PatchOutcome::Ready
    }

    /// The prepared candidate's dense slot vector (memo key material).
    pub(crate) fn cand(&self) -> &[u16] {
        &self.cand
    }

    /// Content digest of the prepared candidate's model — equal to
    /// `Psm::digest()` of the rebuilt model, derived in O(processes)
    /// from the base prefix.
    pub(crate) fn psm_digest(&self) -> u64 {
        digest_with_slots(self.prefix, &self.cand)
    }

    /// Admissible lower bound on the patched candidate's makespan,
    /// computed into a scratch buffer reused across candidates.
    pub(crate) fn lower_bound(&mut self, tool: &PlaceTool) -> u64 {
        self.plan
            .as_ref()
            .expect("lower_bound needs a prepared plan")
            .makespan_lower_bound_in(&tool.emu_config, 1, &mut self.lb_scratch)
            .0
    }

    /// Emulate the prepared candidate on the patched plan, reusing the
    /// report buffer. Bit-identical to running a freshly compiled plan
    /// of the rebuilt model.
    pub(crate) fn run(&mut self, engine: &mut Engine) -> u64 {
        let plan = self.plan.as_ref().expect("run needs a prepared plan");
        engine.run_plan_into(plan, 1, &mut self.report);
        self.report.makespan.0
    }

    /// The report of the last [`PatchState::run`] (for cache insertion).
    pub(crate) fn report(&self) -> &EmulationReport {
        &self.report
    }

    /// Take and reset the patch counter (for flushing into shared
    /// atomics).
    pub(crate) fn take_patches(&mut self) -> u64 {
        std::mem::take(&mut self.patches)
    }
}

/// Incremental hop-weighted traffic: the current slot vector, the
/// running cost, and a CSR flow adjacency so a candidate re-weighs only
/// the flows touching the processes that moved.
pub(crate) struct HopState {
    /// Slots of the last evaluated candidate; empty until the first
    /// evaluation (which does the one full sweep).
    slots: Vec<u16>,
    cost: u64,
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    flow_src: Vec<u32>,
    flow_dst: Vec<u32>,
    flow_w: Vec<u64>,
    cand: Vec<u16>,
    changed: Vec<u32>,
}

impl HopState {
    pub(crate) fn new(tool: &PlaceTool) -> HopState {
        let n = tool.app.process_count();
        let flows = tool.app.flows();
        let flow_src: Vec<u32> = flows.iter().map(|f| f.src.0).collect();
        let flow_dst: Vec<u32> = flows.iter().map(|f| f.dst.0).collect();
        let flow_w: Vec<u64> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| tool.flow_weight(i, f))
            .collect();
        // CSR adjacency; a flow is listed once per distinct endpoint.
        let mut adj_off = vec![0u32; n + 1];
        for i in 0..flows.len() {
            adj_off[flow_src[i] as usize + 1] += 1;
            if flow_dst[i] != flow_src[i] {
                adj_off[flow_dst[i] as usize + 1] += 1;
            }
        }
        for p in 0..n {
            adj_off[p + 1] += adj_off[p];
        }
        let mut adj = vec![0u32; adj_off[n] as usize];
        let mut cursor: Vec<u32> = adj_off[..n].to_vec();
        for i in 0..flows.len() {
            adj[cursor[flow_src[i] as usize] as usize] = i as u32;
            cursor[flow_src[i] as usize] += 1;
            if flow_dst[i] != flow_src[i] {
                adj[cursor[flow_dst[i] as usize] as usize] = i as u32;
                cursor[flow_dst[i] as usize] += 1;
            }
        }
        HopState {
            slots: Vec::new(),
            cost: 0,
            adj_off,
            adj,
            flow_src,
            flow_dst,
            flow_w,
            cand: Vec::with_capacity(n),
            changed: Vec::new(),
        }
    }

    /// Hop cost of `alloc`, updated incrementally from the previously
    /// evaluated candidate. Equal to [`PlaceTool::cost`] for the hop
    /// objectives: the delta path subtracts and re-adds exactly the
    /// `weight × dist` terms of the touched flows, so the running sum is
    /// always the full sum.
    pub(crate) fn cost(&mut self, tool: &PlaceTool, alloc: &Allocation) -> u64 {
        let n = tool.app.process_count();
        self.cand.clear();
        for p in 0..n as u32 {
            self.cand.push(alloc.segment_of_checked(ProcessId(p)).0);
        }
        if self.slots.len() != n {
            // First candidate: one full sweep seeds the running sum.
            self.cost = (0..self.flow_w.len())
                .map(|f| {
                    self.flow_w[f]
                        * tool.dist(
                            SegmentId(self.cand[self.flow_src[f] as usize]),
                            SegmentId(self.cand[self.flow_dst[f] as usize]),
                        )
                })
                .sum();
            self.slots.clone_from(&self.cand);
            return self.cost;
        }
        self.changed.clear();
        for p in 0..n {
            if self.slots[p] != self.cand[p] {
                self.changed.push(p as u32);
            }
        }
        for i in 0..self.changed.len() {
            let p = self.changed[i] as usize;
            let (lo, hi) = (self.adj_off[p] as usize, self.adj_off[p + 1] as usize);
            for k in lo..hi {
                let f = self.adj[k] as usize;
                self.cost -= self.flow_w[f]
                    * tool.dist(
                        SegmentId(self.slots[self.flow_src[f] as usize]),
                        SegmentId(self.slots[self.flow_dst[f] as usize]),
                    );
            }
            self.slots[p] = self.cand[p];
            for k in lo..hi {
                let f = self.adj[k] as usize;
                self.cost += self.flow_w[f]
                    * tool.dist(
                        SegmentId(self.slots[self.flow_src[f] as usize]),
                        SegmentId(self.slots[self.flow_dst[f] as usize]),
                    );
            }
        }
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_apps::generators::{random_layered, GeneratorConfig};
    use segbus_core::{Emulator, Engine};
    use segbus_model::platform::{Platform, Topology};
    use segbus_model::rng::SmallRng;
    use segbus_model::time::ClockDomain;

    const SEGMENTS: usize = 3;

    fn app() -> segbus_model::psdf::Application {
        random_layered(3, 3, 7, GeneratorConfig::default())
    }

    fn alloc_of(slots: &[u16], segments: usize) -> Allocation {
        let mut alloc = Allocation::new(segments);
        for (p, &s) in slots.iter().enumerate() {
            alloc.assign(ProcessId(p as u32), SegmentId(s));
        }
        alloc
    }

    /// One random step of the solvers' neighbourhood: a swap of two
    /// processes, or a single move guarded to never empty a segment (so
    /// every visited candidate stays emulable).
    fn random_step(rng: &mut SmallRng, slots: &mut [u16], segments: usize) {
        if rng.gen_bool(0.5) {
            let a = rng.range_usize(0, slots.len() - 1);
            let b = rng.range_usize(0, slots.len() - 1);
            slots.swap(a, b);
        } else {
            let p = rng.range_usize(0, slots.len() - 1);
            let from = slots[p];
            if slots.iter().filter(|&&s| s == from).count() > 1 {
                slots[p] = rng.range_usize(0, segments - 1) as u16;
            }
        }
    }

    /// The incremental hop cost equals the full [`PlaceTool::cost`]
    /// sweep after arbitrary move/swap sequences, for every hop
    /// objective, both topologies, and capacitated variants.
    #[test]
    fn hop_delta_matches_full_cost_over_random_walks() {
        let app = app();
        let n = app.process_count();
        let variants = [
            (Objective::Items, Topology::Linear, None),
            (Objective::Items, Topology::Ring, Some(n)),
            (Objective::Packages(12), Topology::Linear, Some(n)),
            (Objective::Packages(12), Topology::Ring, None),
        ];
        for (objective, topology, capacity) in variants {
            let mut tool = PlaceTool::new(&app, SEGMENTS)
                .with_objective(objective)
                .with_topology(topology);
            if let Some(cap) = capacity {
                tool = tool.with_capacity(cap);
            }
            let mut hop = HopState::new(&tool);
            let mut rng = SmallRng::seed_from_u64(0xDE17A);
            let mut slots: Vec<u16> = (0..n).map(|p| (p % SEGMENTS) as u16).collect();
            for step in 0..300 {
                random_step(&mut rng, &mut slots, SEGMENTS);
                let alloc = alloc_of(&slots, SEGMENTS);
                assert_eq!(
                    hop.cost(&tool, &alloc),
                    tool.cost(&alloc),
                    "step {step}: {objective:?}/{topology:?} delta diverged"
                );
            }
        }
    }

    /// Plan patching is exact: after an arbitrary move/swap walk, the
    /// patched plan's report is bit-identical (every counter, not just
    /// the makespan) to emulating a freshly built model of the same
    /// candidate.
    #[test]
    fn patched_plan_reports_match_fresh_models_bitwise() {
        let app = app();
        let n = app.process_count();
        let platform = Platform::builder("delta-test")
            .uniform_segments(SEGMENTS, ClockDomain::from_mhz(100.0))
            .build()
            .expect("valid platform");
        let tool = PlaceTool::new(&app, SEGMENTS).with_makespan(&platform);
        let base = EvalBase::new(&tool);
        let mut patch = PatchState::new(&tool, &base);
        let mut engine = Engine::new(tool.emu_config);
        let mut rng = SmallRng::seed_from_u64(0xB17);
        let mut slots: Vec<u16> = (0..n).map(|p| (p % SEGMENTS) as u16).collect();
        for step in 0..40 {
            random_step(&mut rng, &mut slots, SEGMENTS);
            let alloc = alloc_of(&slots, SEGMENTS);
            assert_eq!(patch.prepare(&tool, &alloc), PatchOutcome::Ready);
            assert_eq!(patch.patch(), PatchOutcome::Ready);
            let patched = patch.run(&mut engine);
            let fresh_psm =
                Psm::new(platform.clone(), app.clone(), alloc).expect("walk stays feasible");
            let fresh = Emulator::new(tool.emu_config).run(&fresh_psm);
            assert_eq!(patched, fresh.makespan.0, "step {step}");
            assert_eq!(
                format!("{:?}", patch.report()),
                format!("{fresh:?}"),
                "step {step}: patched report diverged from the fresh model"
            );
        }
    }

    /// The plan's lower bound is admissible on every candidate the walk
    /// visits: never above the emulated makespan, and never trivial.
    #[test]
    fn plan_lower_bound_never_exceeds_patched_makespan() {
        let app = app();
        let n = app.process_count();
        let platform = Platform::builder("delta-lb-test")
            .uniform_segments(SEGMENTS, ClockDomain::from_mhz(100.0))
            .build()
            .expect("valid platform");
        let tool = PlaceTool::new(&app, SEGMENTS).with_makespan(&platform);
        let base = EvalBase::new(&tool);
        let mut patch = PatchState::new(&tool, &base);
        let mut engine = Engine::new(tool.emu_config);
        let mut rng = SmallRng::seed_from_u64(0x10B0);
        let mut slots: Vec<u16> = (0..n).map(|p| (p % SEGMENTS) as u16).collect();
        for step in 0..40 {
            random_step(&mut rng, &mut slots, SEGMENTS);
            let alloc = alloc_of(&slots, SEGMENTS);
            assert_eq!(patch.prepare(&tool, &alloc), PatchOutcome::Ready);
            assert_eq!(patch.patch(), PatchOutcome::Ready);
            let lb = patch.lower_bound(&tool);
            let mk = patch.run(&mut engine);
            assert!(lb > 0, "step {step}: trivial bound");
            assert!(lb <= mk, "step {step}: bound {lb} above makespan {mk}");
        }
    }
}
