//! # segbus-place
//!
//! The *PlaceTool* substrate (paper §3.5, ref.\[16\]): given the
//! communication matrix of an application and the number of segments of the
//! target platform, find a process-to-segment allocation that minimises
//! inter-segment traffic.
//!
//! The objective is the hop-weighted traffic
//! `Σ_flows weight(f) · hops(seg(src), seg(dst))` over the linear topology,
//! with the weight either in data items or in packages at a given package
//! size (what actually crosses the border units). Allocations must keep
//! every segment non-empty (the platform's structural constraint V005) and
//! may be capacity-limited.
//!
//! Four solvers are provided:
//!
//! * [`PlaceTool::exhaustive`] — exact, for small instances;
//! * [`PlaceTool::greedy`] — traffic-ordered constructive heuristic;
//! * [`PlaceTool::refine`] — move/swap hill climbing from a start point;
//! * [`PlaceTool::anneal`] — seeded simulated annealing;
//! * [`kernighan_lin`] — classic KL bipartitioning for two segments.
//!
//! [`PlaceTool::best`] composes them (greedy → refine, anneal → refine,
//! best of the two) and is what the experiments use.
//!
//! Hop-weighted traffic is a *proxy* for what the designer actually wants
//! — a short schedule. [`PlaceTool::with_makespan`] switches the solvers
//! to [`Objective::Makespan`]: every candidate allocation is judged by
//! running the discrete-event estimator on a concrete platform, with
//! per-allocation memoisation and a reused engine keeping the inner loop
//! affordable (emulation in the loop).
//!
//! ```
//! use segbus_apps::generators::{chain, GeneratorConfig};
//! use segbus_place::{Objective, PlaceTool};
//!
//! let app = chain(6, GeneratorConfig::default());
//! let tool = PlaceTool::new(&app, 3);
//! let exact = tool.exhaustive().expect("small instance");
//! let best = tool.best(42);
//! assert_eq!(best.cost, exact.cost); // heuristics find the optimum here
//! let _ = Objective::Items;
//! ```

#![warn(missing_docs)]

mod delta;
pub mod kl;
pub mod parallel;
pub mod portfolio;

pub use kl::kernighan_lin;
pub use parallel::{allocation_digest, ParallelSearch, SearchStats};
pub use portfolio::Portfolio;

use std::collections::HashMap;

use segbus_core::{EmulatorConfig, Engine};
use segbus_model::ids::{ProcessId, SegmentId};
use segbus_model::mapping::{Allocation, Psm};
use segbus_model::platform::{Platform, Topology};
use segbus_model::psdf::Application;
use segbus_model::rng::SmallRng;

/// What the solvers minimise.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Objective {
    /// Hop-weighted data items (the communication-matrix entries).
    #[default]
    Items,
    /// Hop-weighted packages at the given package size.
    Packages(u32),
    /// The emulated makespan, in picoseconds, of the candidate allocation
    /// on a concrete platform (emulation in the loop). Configure it with
    /// [`PlaceTool::with_makespan`]; the hop-count objectives are proxies
    /// for exactly this quantity, so this variant trades solver speed for
    /// fidelity. Candidate evaluations are memoised per allocation, and
    /// the constructive heuristics (greedy seeding, Kernighan–Lin) keep
    /// using the item-count surrogate to stay cheap.
    Makespan,
}

/// A solved placement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Placement {
    /// The allocation (complete and feasible).
    pub allocation: Allocation,
    /// Objective value.
    pub cost: u64,
}

/// The placement solver.
#[derive(Clone, Copy, Debug)]
pub struct PlaceTool<'a> {
    app: &'a Application,
    segments: usize,
    capacity: Option<usize>,
    objective: Objective,
    topology: Topology,
    /// The concrete platform emulated by [`Objective::Makespan`].
    platform: Option<&'a Platform>,
    emu_config: EmulatorConfig,
    /// Measured per-flow weights (indexed by flow position) overriding
    /// the model-declared traffic; see
    /// [`PlaceTool::with_measured_weights`].
    measured: Option<&'a [u64]>,
    /// Incremental candidate evaluation (delta hop sums, plan patching,
    /// lower-bound skips); see [`PlaceTool::with_incremental`].
    incremental: bool,
}

impl<'a> PlaceTool<'a> {
    /// A solver for `segments` segments with no capacity limit and the
    /// [`Objective::Items`] objective.
    ///
    /// # Panics
    /// Panics if `segments` is zero or exceeds the process count (a
    /// non-empty-segment-feasible allocation would not exist).
    pub fn new(app: &'a Application, segments: usize) -> PlaceTool<'a> {
        assert!(segments > 0, "at least one segment");
        assert!(
            segments <= app.process_count(),
            "more segments than processes: no feasible allocation keeps every segment non-empty"
        );
        PlaceTool {
            app,
            segments,
            capacity: None,
            objective: Objective::Items,
            topology: Topology::Linear,
            platform: None,
            emu_config: EmulatorConfig::default(),
            measured: None,
            incremental: true,
        }
    }

    /// Toggle incremental candidate evaluation (on by default): delta
    /// hop-cost maintenance, plan patching and lower-bound emulation
    /// skips. `false` forces the pre-incremental path — every candidate
    /// rebuilds its model and is evaluated from scratch. Search results
    /// are bit-identical either way (the delta paths are exact and the
    /// bound is admissible); this is a diagnostics and benchmarking
    /// escape hatch, like the interpreter engine.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Use ring (or linear) hop distances for the objective.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Limit every segment to at most `cap` processes.
    ///
    /// # Panics
    /// Panics if the capacity makes the instance infeasible.
    pub fn with_capacity(mut self, cap: usize) -> Self {
        assert!(
            cap * self.segments >= self.app.process_count(),
            "capacity × segments must cover all processes"
        );
        assert!(cap >= 1);
        self.capacity = Some(cap);
        self
    }

    /// Change the objective.
    ///
    /// # Panics
    /// Panics on [`Objective::Makespan`] — that variant needs a platform;
    /// use [`PlaceTool::with_makespan`] instead.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        assert!(
            objective != Objective::Makespan,
            "Objective::Makespan needs a platform: use with_makespan"
        );
        self.objective = objective;
        self
    }

    /// Minimise the emulated makespan on `platform` (emulation in the
    /// loop). `refine`/`anneal`/`best` evaluate every candidate allocation
    /// by running the discrete-event estimator, memoising results per
    /// allocation so revisited candidates cost a hash lookup.
    ///
    /// # Panics
    /// Panics if the platform's segment count differs from the solver's.
    pub fn with_makespan(mut self, platform: &'a Platform) -> Self {
        assert_eq!(
            platform.segment_count(),
            self.segments,
            "platform segment count must match the solver"
        );
        self.objective = Objective::Makespan;
        self.platform = Some(platform);
        self
    }

    /// Emulator configuration for [`Objective::Makespan`] evaluations.
    pub fn with_emulator_config(mut self, config: EmulatorConfig) -> Self {
        self.emu_config = config;
        self
    }

    /// Weight flows by *measured* traffic instead of the model's declared
    /// item counts: `weights[i]` is the weight of the application's `i`-th
    /// flow (e.g. packages actually delivered in a trace — see
    /// `segbus_core`'s trace analysis). The hop-weighted objectives and
    /// the greedy placement order both use these weights; a flow the
    /// measurement never saw weighs nothing, however large its declared
    /// rate.
    ///
    /// # Panics
    /// Panics if `weights` does not have one entry per flow.
    pub fn with_measured_weights(mut self, weights: &'a [u64]) -> Self {
        assert_eq!(
            weights.len(),
            self.app.flows().len(),
            "one measured weight per flow"
        );
        self.measured = Some(weights);
        self
    }

    /// Hop distance between two segments under the configured topology.
    fn dist(&self, a: SegmentId, b: SegmentId) -> u64 {
        let d = a.hops_to(b) as u64;
        match self.topology {
            Topology::Linear => d,
            Topology::Ring => d.min(self.segments as u64 - d),
        }
    }

    /// Objective value of a complete allocation. For
    /// [`Objective::Makespan`] this emulates the candidate from scratch
    /// (the solvers go through a memoised evaluator instead); the
    /// allocation must then also be feasible, since the PSM validator
    /// rejects empty segments.
    pub fn cost(&self, alloc: &Allocation) -> u64 {
        if self.objective == Objective::Makespan {
            return self.emulate(&mut Engine::new(self.emu_config), alloc);
        }
        self.hop_cost(alloc)
    }

    /// The hop-weighted traffic objective (always defined, used directly
    /// by the `Items`/`Packages` objectives).
    fn hop_cost(&self, alloc: &Allocation) -> u64 {
        self.app
            .flows()
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let a = alloc.segment_of_checked(f.src);
                let b = alloc.segment_of_checked(f.dst);
                self.flow_weight(i, f) * self.dist(a, b)
            })
            .sum()
    }

    /// Emulated makespan of the candidate, in picoseconds.
    ///
    /// Candidates that fail PSM construction or the engine pre-flight
    /// (possible when the search is driven from imported, adversarial
    /// models) cost `u64::MAX` — they can never win, and the search stays
    /// panic-free instead of unwinding out of `Engine::run`.
    fn emulate(&self, engine: &mut Engine, alloc: &Allocation) -> u64 {
        let platform = self
            .platform
            .expect("Objective::Makespan is only set together with a platform");
        let psm = match Psm::new(platform.clone(), self.app.clone(), alloc.clone()) {
            Ok(psm) => psm,
            Err(_) => return u64::MAX,
        };
        match engine.try_run(&psm) {
            Ok(report) => report.makespan.0,
            Err(_) => u64::MAX,
        }
    }

    /// The allocation as a dense segment-index vector (memoisation key).
    fn slots(&self, alloc: &Allocation) -> Vec<u16> {
        (0..self.app.process_count() as u32)
            .map(|p| alloc.segment_of_checked(ProcessId(p)).0)
            .collect()
    }

    /// `true` if the allocation is complete, within capacity, and leaves no
    /// segment empty.
    pub fn feasible(&self, alloc: &Allocation) -> bool {
        let n = self.app.process_count();
        if !alloc.is_complete(n) {
            return false;
        }
        for s in 0..self.segments as u16 {
            let c = alloc.count_on(SegmentId(s));
            if c == 0 {
                return false;
            }
            if let Some(cap) = self.capacity {
                if c > cap {
                    return false;
                }
            }
        }
        true
    }

    // -- exact solver -------------------------------------------------------

    /// Exhaustive search. Returns `None` when the instance exceeds
    /// ~20 million assignments (`segments ^ processes`).
    pub fn exhaustive(&self) -> Option<Placement> {
        let n = self.app.process_count();
        let k = self.segments;
        // k^n with overflow guard.
        let mut size: u64 = 1;
        for _ in 0..n {
            size = size.checked_mul(k as u64)?;
            if size > 20_000_000 {
                return None;
            }
        }
        let mut assign = vec![0usize; n];
        let mut best: Option<(u64, Vec<usize>)> = None;
        'outer: loop {
            // Evaluate.
            let mut alloc = Allocation::new(k);
            for (p, &s) in assign.iter().enumerate() {
                alloc.assign(ProcessId(p as u32), SegmentId(s as u16));
            }
            if self.feasible(&alloc) {
                let c = self.cost(&alloc);
                if best.as_ref().map(|(b, _)| c < *b).unwrap_or(true) {
                    best = Some((c, assign.clone()));
                }
            }
            // Next assignment (odometer).
            let mut i = 0;
            loop {
                if i == n {
                    break 'outer;
                }
                assign[i] += 1;
                if assign[i] == k {
                    assign[i] = 0;
                    i += 1;
                } else {
                    break;
                }
            }
        }
        let (cost, assign) = best?;
        let mut alloc = Allocation::new(k);
        for (p, &s) in assign.iter().enumerate() {
            alloc.assign(ProcessId(p as u32), SegmentId(s as u16));
        }
        Some(Placement {
            allocation: alloc,
            cost,
        })
    }

    // -- greedy constructive --------------------------------------------------

    /// Traffic-ordered constructive heuristic: processes are placed in
    /// descending order of total traffic; each goes to the feasible segment
    /// that minimises the cost against already-placed neighbours, with
    /// empty segments seeded first.
    pub fn greedy(&self) -> Placement {
        let alloc = self.greedy_allocation();
        let cost = self.cost(&alloc);
        Placement {
            allocation: alloc,
            cost,
        }
    }

    fn greedy_allocation(&self) -> Allocation {
        let n = self.app.process_count();
        let mut order: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
        if self.measured.is_some() {
            // Measured traffic drives the placement order too.
            let mut totals = vec![0u64; n];
            for (i, f) in self.app.flows().iter().enumerate() {
                let w = self.flow_weight(i, f);
                totals[f.src.index()] += w;
                totals[f.dst.index()] += w;
            }
            order.sort_by_key(|&p| std::cmp::Reverse(totals[p.index()]));
        } else {
            let matrix = segbus_model::matrix::CommMatrix::from_application(self.app);
            order.sort_by_key(|&p| std::cmp::Reverse(matrix.row_sum(p) + matrix.col_sum(p)));
        }

        let mut alloc = Allocation::new(self.segments);
        let mut placed = 0usize;
        for &p in &order {
            let unplaced_left = n - placed;
            let empty = (0..self.segments as u16)
                .filter(|&s| alloc.count_on(SegmentId(s)) == 0)
                .count();
            let must_seed = unplaced_left <= empty;
            let mut best_seg = None;
            let mut best_cost = u64::MAX;
            for s in 0..self.segments as u16 {
                let seg = SegmentId(s);
                if let Some(cap) = self.capacity {
                    if alloc.count_on(seg) >= cap {
                        continue;
                    }
                }
                if must_seed && alloc.count_on(seg) > 0 {
                    continue;
                }
                let c = self.incremental_cost(&alloc, p, seg);
                if c < best_cost {
                    best_cost = c;
                    best_seg = Some(seg);
                }
            }
            alloc.assign(p, best_seg.expect("capacity assertion guarantees room"));
            placed += 1;
        }
        debug_assert!(self.feasible(&alloc));
        alloc
    }

    /// Cost contribution of placing `p` on `seg` given the flows to/from
    /// already-placed processes.
    fn incremental_cost(&self, alloc: &Allocation, p: ProcessId, seg: SegmentId) -> u64 {
        self.app
            .flows()
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                let (other, w) = if f.src == p {
                    (f.dst, self.flow_weight(i, f))
                } else if f.dst == p {
                    (f.src, self.flow_weight(i, f))
                } else {
                    return None;
                };
                alloc.segment_of(other).map(|os| w * self.dist(os, seg))
            })
            .sum()
    }

    fn flow_weight(&self, i: usize, f: &segbus_model::psdf::Flow) -> u64 {
        if let Some(w) = self.measured {
            return w[i];
        }
        match self.objective {
            // Makespan uses items as the constructive-heuristic surrogate;
            // the emulator only judges complete candidates.
            Objective::Items | Objective::Makespan => f.items,
            Objective::Packages(s) => f.packages(s),
        }
    }

    // -- local search -----------------------------------------------------------

    /// Hill climbing: single-process moves and pairwise swaps until no
    /// improving step exists. Never returns a worse placement than the
    /// start.
    ///
    /// # Panics
    /// Panics if `start` is infeasible.
    pub fn refine(&self, start: Allocation) -> Placement {
        let base = delta::EvalBase::new(self);
        self.refine_in(&mut Evaluator::new(self, &base), start)
    }

    fn refine_in<E: CostEval>(&self, eval: &mut E, start: Allocation) -> Placement {
        assert!(self.feasible(&start), "refine needs a feasible start");
        let n = self.app.process_count();
        let mut alloc = start;
        let mut cost = eval.cost(&alloc);
        loop {
            let mut improved = false;
            // Single moves.
            for p in (0..n as u32).map(ProcessId) {
                let from = alloc.segment_of_checked(p);
                for s in 0..self.segments as u16 {
                    let to = SegmentId(s);
                    if to == from {
                        continue;
                    }
                    alloc.assign(p, to);
                    let better = self.feasible(&alloc) && {
                        match eval.cost_if_below(&alloc, cost) {
                            Some(c) if c < cost => {
                                cost = c;
                                true
                            }
                            _ => false,
                        }
                    };
                    if better {
                        improved = true;
                        break;
                    }
                    alloc.assign(p, from);
                }
            }
            // Pairwise swaps.
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    let (pa, pb) = (ProcessId(a), ProcessId(b));
                    let (sa, sb) = (alloc.segment_of_checked(pa), alloc.segment_of_checked(pb));
                    if sa == sb {
                        continue;
                    }
                    alloc.assign(pa, sb);
                    alloc.assign(pb, sa);
                    let better = self.feasible(&alloc) && {
                        match eval.cost_if_below(&alloc, cost) {
                            Some(c) if c < cost => {
                                cost = c;
                                true
                            }
                            _ => false,
                        }
                    };
                    if better {
                        improved = true;
                    } else {
                        alloc.assign(pa, sa);
                        alloc.assign(pb, sb);
                    }
                }
            }
            if !improved {
                return Placement {
                    allocation: alloc,
                    cost,
                };
            }
        }
    }

    // -- simulated annealing ------------------------------------------------------

    /// Seeded simulated annealing over moves and swaps, starting from the
    /// greedy placement. Deterministic for a given seed.
    pub fn anneal(&self, seed: u64, iterations: usize) -> Placement {
        let base = delta::EvalBase::new(self);
        self.anneal_in(&mut Evaluator::new(self, &base), seed, iterations)
    }

    fn anneal_in<E: CostEval>(&self, eval: &mut E, seed: u64, iterations: usize) -> Placement {
        self.anneal_from(eval, self.greedy_allocation(), seed, iterations)
    }

    /// Annealing from an explicit feasible start (the portfolio search
    /// restarts chains from the global incumbent). Identical draw
    /// sequence to [`PlaceTool::anneal`] for the same seed.
    fn anneal_from<E: CostEval>(
        &self,
        eval: &mut E,
        start: Allocation,
        seed: u64,
        iterations: usize,
    ) -> Placement {
        let n = self.app.process_count();
        let mut rng = SmallRng::seed_from_u64(seed);
        debug_assert!(self.feasible(&start), "anneal needs a feasible start");
        let mut alloc = start;
        let mut cost = eval.cost(&alloc) as f64;
        let mut best = alloc.clone();
        let mut best_cost = cost;

        let t0 = (cost / 2.0).max(1.0);
        let iters = iterations.max(1);
        for it in 0..iters {
            let temp = t0 * (1.0 - it as f64 / iters as f64) + 1e-9;
            // Propose: 50 % move, 50 % swap.
            let undo: [(ProcessId, SegmentId); 2] = if rng.gen_bool(0.5) {
                let p = ProcessId(rng.below(n as u64) as u32);
                let from = alloc.segment_of_checked(p);
                let to = SegmentId(rng.below(self.segments as u64) as u16);
                alloc.assign(p, to);
                [(p, from), (p, from)]
            } else {
                let a = ProcessId(rng.below(n as u64) as u32);
                let b = ProcessId(rng.below(n as u64) as u32);
                let (sa, sb) = (alloc.segment_of_checked(a), alloc.segment_of_checked(b));
                alloc.assign(a, sb);
                alloc.assign(b, sa);
                [(a, sa), (b, sb)]
            };
            if !self.feasible(&alloc) {
                for (p, s) in undo {
                    alloc.assign(p, s);
                }
                continue;
            }
            let c = eval.cost(&alloc) as f64;
            let accept = c <= cost || rng.gen_bool(((cost - c) / temp).exp().clamp(0.0, 1.0));
            if accept {
                cost = c;
                if c < best_cost {
                    best_cost = c;
                    best = alloc.clone();
                }
            } else {
                for (p, s) in undo {
                    alloc.assign(p, s);
                }
            }
        }
        Placement {
            allocation: best,
            cost: best_cost as u64,
        }
    }

    /// The composed solver used by the experiments: exact search when the
    /// instance is small enough to enumerate quickly, otherwise the best of
    /// greedy → refine, three annealing restarts → refine, and (on two
    /// segments without capacity limits) Kernighan–Lin → refine.
    pub fn best(&self, seed: u64) -> Placement {
        let n = self.app.process_count();
        // Enumerating every allocation is off the table when each
        // evaluation is a full emulation run.
        if self.objective != Objective::Makespan
            && (self.segments as f64).powi(n as i32) <= 250_000.0
        {
            if let Some(p) = self.exhaustive() {
                return p;
            }
        }
        // One evaluator for the whole composition: candidates revisited
        // across greedy/KL/annealing restarts hit the memo, and the
        // makespan evaluator's patched plan survives across phases.
        let base = delta::EvalBase::new(self);
        let mut eval = Evaluator::new(self, &base);
        let mut winner = self.refine_in(&mut eval, self.greedy_allocation());
        if self.kl_applicable() {
            let kl = self.refine_in(&mut eval, self.kl_allocation());
            if kl.cost < winner.cost {
                winner = kl;
            }
        }
        let iterations = self.best_iterations();
        for restart in 0..3u64 {
            let a = self.anneal_in(
                &mut eval,
                seed.wrapping_add(restart.wrapping_mul(0x9e37_79b9)),
                iterations,
            );
            let a = self.refine_in(&mut eval, a.allocation);
            if a.cost < winner.cost {
                winner = a;
            }
        }
        winner
    }

    /// Annealing iteration budget used by `best` (and the parallel
    /// search, which must match it to stay comparable).
    fn best_iterations(&self) -> usize {
        let n = self.app.process_count();
        match self.objective {
            // Emulated evaluations are ~1000× a hop count; memoisation
            // soaks up revisits but fresh candidates stay expensive.
            Objective::Makespan => (20 * n * self.segments).min(600),
            _ => 200 * n * self.segments,
        }
    }

    /// `true` when `best` runs the Kernighan–Lin start (two segments, no
    /// capacity limit, at least two processes).
    fn kl_applicable(&self) -> bool {
        self.segments == 2 && self.capacity.is_none() && self.app.process_count() >= 2
    }

    /// The Kernighan–Lin start used by `best`: KL optimises the surrogate
    /// cut weight; the refine pass after it judges with the real
    /// objective.
    fn kl_allocation(&self) -> Allocation {
        let kl_objective = match self.objective {
            Objective::Makespan => Objective::Items,
            o => o,
        };
        crate::kl::kernighan_lin(self.app, kl_objective, 8).allocation
    }

    /// A parallel search over this solver: candidate evaluation sharded
    /// across `threads` [`segbus_core::SweepPool`] workers with a shared
    /// allocation-digest memo and cache-tiered makespan evaluation. See
    /// [`ParallelSearch`]. `threads == 0` picks the machine parallelism.
    pub fn parallel(self, threads: usize) -> ParallelSearch<'a> {
        ParallelSearch::new(self, threads)
    }

    /// A portfolio search over this solver: the greedy, Kernighan–Lin and
    /// annealing families run concurrently in synchronous rounds with a
    /// shared memo and a shared incumbent, stale families restarting from
    /// the incumbent between rounds. See [`Portfolio`]. `threads == 0`
    /// picks the machine parallelism.
    pub fn portfolio(self, threads: usize) -> Portfolio<'a> {
        Portfolio::new(self, threads)
    }
}

/// Objective evaluation seen by the local-search solvers.
///
/// The sequential solvers use the single-threaded [`Evaluator`]; the
/// parallel search substitutes a worker-local view of a shared,
/// thread-safe memo (see [`parallel`]). Implementations must be pure
/// caches of the same deterministic cost function — the solvers' search
/// trajectories must not depend on which evaluator backs them.
trait CostEval {
    /// Objective value of a feasible candidate.
    fn cost(&mut self, alloc: &Allocation) -> u64;

    /// Objective value, or `None` when the evaluator can prove — via an
    /// admissible lower bound — that the candidate costs at least
    /// `incumbent` without evaluating it exactly. `None` therefore never
    /// hides a candidate an exact evaluator would have accepted: the
    /// hill-climbing trajectory is identical either way, only the number
    /// of exact evaluations differs. The default is the exact evaluation.
    fn cost_if_below(&mut self, alloc: &Allocation, incumbent: u64) -> Option<u64> {
        let _ = incumbent;
        Some(self.cost(alloc))
    }
}

/// Objective evaluator shared across the solver phases of one `best` run.
///
/// For the hop-count objectives it maintains an incremental
/// [`delta::HopState`] (O(degree) per candidate instead of a full flow
/// sweep). For [`Objective::Makespan`] it owns a reusable [`Engine`] and a
/// [`delta::PatchState`] — a compiled plan of the caller-provided
/// [`delta::EvalBase`] patched per candidate, with a reused report buffer
/// — memoises the makespan per allocation digest, and skips emulation
/// entirely when the plan's admissible lower bound proves a candidate
/// cannot beat the incumbent ([`CostEval::cost_if_below`]).
struct Evaluator<'b, 't, 'a> {
    tool: &'t PlaceTool<'a>,
    engine: Engine,
    hop: Option<delta::HopState>,
    patch: delta::PatchState<'b>,
    memo: HashMap<u64, u64>,
    /// Distinct emulation runs performed (memo misses).
    misses: usize,
    /// Candidates rejected by the lower bound without emulation.
    bound_skips: u64,
}

impl<'b, 't, 'a> Evaluator<'b, 't, 'a> {
    fn new(tool: &'t PlaceTool<'a>, base: &'b delta::EvalBase) -> Evaluator<'b, 't, 'a> {
        Evaluator {
            tool,
            engine: Engine::new(tool.emu_config),
            hop: (tool.incremental && tool.objective != Objective::Makespan)
                .then(|| delta::HopState::new(tool)),
            patch: delta::PatchState::new(tool, base),
            memo: HashMap::new(),
            misses: 0,
            bound_skips: 0,
        }
    }

    /// Makespan of the candidate, or `None` when `threshold` is set and
    /// the lower bound proves the candidate cannot beat it.
    fn makespan_cost(&mut self, alloc: &Allocation, threshold: Option<u64>) -> Option<u64> {
        let outcome = self.patch.prepare(self.tool, alloc);
        let key = allocation_digest(self.patch.cand());
        if let Some(&c) = self.memo.get(&key) {
            return Some(c);
        }
        // Memo miss: only now patch the plan onto the candidate — memo
        // hits never pay the remap work.
        let outcome = match outcome {
            delta::PatchOutcome::Ready => self.patch.patch(),
            o => o,
        };
        let c = match outcome {
            // Empty segment or unroutable move: same `u64::MAX` the
            // model-rebuild path reports for a PSM that fails validation.
            delta::PatchOutcome::Infeasible => u64::MAX,
            delta::PatchOutcome::NoPlan => self.tool.emulate(&mut self.engine, alloc),
            delta::PatchOutcome::Ready => {
                if let Some(incumbent) = threshold {
                    if self.patch.lower_bound(self.tool) >= incumbent {
                        // Provably no better than the incumbent: skip the
                        // emulation. Not memoised — the exact cost is
                        // still unknown.
                        self.bound_skips += 1;
                        return None;
                    }
                }
                self.patch.run(&mut self.engine)
            }
        };
        self.misses += 1;
        self.memo.insert(key, c);
        Some(c)
    }
}

impl CostEval for Evaluator<'_, '_, '_> {
    fn cost(&mut self, alloc: &Allocation) -> u64 {
        if self.tool.objective != Objective::Makespan {
            return match self.hop.as_mut() {
                Some(hop) => hop.cost(self.tool, alloc),
                None => self.tool.hop_cost(alloc),
            };
        }
        self.makespan_cost(alloc, None)
            .expect("exact evaluation never bound-skips")
    }

    fn cost_if_below(&mut self, alloc: &Allocation, incumbent: u64) -> Option<u64> {
        if self.tool.objective != Objective::Makespan {
            return Some(self.cost(alloc));
        }
        let threshold = self.tool.incremental.then_some(incumbent);
        self.makespan_cost(alloc, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_model::psdf::{Flow, Process};

    /// Two tightly-coupled cliques connected by a thin link — the optimum
    /// is obvious.
    fn two_cliques() -> Application {
        let mut app = Application::new("cliques");
        let p: Vec<ProcessId> = (0..6)
            .map(|i| app.add_process(Process::new(format!("P{i}"))))
            .collect();
        // Clique A: P0-P1-P2 heavy, clique B: P3-P4-P5 heavy.
        for (a, b) in [(0, 1), (1, 2), (3, 4), (4, 5)] {
            app.add_flow(Flow::new(p[a], p[b], 1000, 1, 1)).unwrap();
        }
        // Thin bridge.
        app.add_flow(Flow::new(p[2], p[3], 36, 2, 1)).unwrap();
        app
    }

    #[test]
    fn exhaustive_finds_the_obvious_cut() {
        let app = two_cliques();
        let tool = PlaceTool::new(&app, 2);
        let best = tool.exhaustive().unwrap();
        assert_eq!(best.cost, 36, "only the bridge crosses");
        let a = &best.allocation;
        let seg0 = a.segment_of_checked(ProcessId(0));
        for i in 1..3 {
            assert_eq!(a.segment_of_checked(ProcessId(i)), seg0);
        }
        let seg1 = a.segment_of_checked(ProcessId(3));
        assert_ne!(seg0, seg1);
        for i in 4..6 {
            assert_eq!(a.segment_of_checked(ProcessId(i)), seg1);
        }
    }

    #[test]
    fn greedy_is_feasible_and_bounded() {
        // Greedy is a constructive heuristic; on this instance it gets
        // caught by the non-empty-segment constraint (everything gravitates
        // to one segment, the last process seeds the other), so we only
        // require feasibility and a sane bound — `best` recovers the
        // optimum via annealing.
        let app = two_cliques();
        let tool = PlaceTool::new(&app, 2);
        let g = tool.greedy();
        assert!(tool.feasible(&g.allocation));
        assert!(g.cost <= 1000, "greedy cost {}", g.cost);
    }

    #[test]
    fn anneal_and_best_match_optimum_on_cliques() {
        let app = two_cliques();
        let tool = PlaceTool::new(&app, 2);
        assert_eq!(tool.anneal(7, 2000).cost, 36);
        assert_eq!(tool.best(7).cost, 36);
    }

    #[test]
    fn measured_weights_override_declared_traffic() {
        // Declared traffic says the cliques are heavy and the bridge is
        // thin; a measurement saying the *bridge* is the only active flow
        // must flip the optimum to "keep P2 and P3 together".
        let app = two_cliques();
        let weights = [0u64, 0, 0, 0, 1000]; // only the bridge observed
        let tool = PlaceTool::new(&app, 2).with_measured_weights(&weights);
        let best = tool.exhaustive().unwrap();
        assert_eq!(best.cost, 0, "the bridge must not cross");
        assert_eq!(
            best.allocation.segment_of_checked(ProcessId(2)),
            best.allocation.segment_of_checked(ProcessId(3)),
        );
        // Greedy stays feasible under measured ordering too.
        let g = tool.greedy();
        assert!(tool.feasible(&g.allocation));
    }

    #[test]
    #[should_panic(expected = "one measured weight per flow")]
    fn measured_weights_must_cover_every_flow() {
        let app = two_cliques();
        let _ = PlaceTool::new(&app, 2).with_measured_weights(&[1, 2, 3]);
    }

    #[test]
    fn refine_never_worsens() {
        let app = two_cliques();
        let tool = PlaceTool::new(&app, 2);
        // Deliberately bad but feasible start: split the cliques.
        let start = Allocation::from_groups(&[&[0, 2, 4], &[1, 3, 5]]);
        let start_cost = tool.cost(&start);
        let refined = tool.refine(start);
        assert!(refined.cost <= start_cost);
        assert_eq!(refined.cost, 36, "hill climbing solves this instance");
    }

    #[test]
    fn capacity_is_respected() {
        let app = two_cliques();
        let tool = PlaceTool::new(&app, 2).with_capacity(3);
        let g = tool.greedy();
        assert!(tool.feasible(&g.allocation));
        for s in 0..2u16 {
            assert!(g.allocation.count_on(SegmentId(s)) <= 3);
        }
        let e = tool.exhaustive().unwrap();
        assert!(tool.feasible(&e.allocation));
        // With capacity 3 the split is forced 3 + 3, still cost 36.
        assert_eq!(e.cost, 36);
    }

    #[test]
    fn no_segment_left_empty() {
        // A star: everything talks to P0; the unconstrained optimum would
        // collapse onto one segment, but feasibility forces a seed.
        let mut app = Application::new("star");
        let hub = app.add_process(Process::new("HUB"));
        let leaves: Vec<_> = (0..4)
            .map(|i| app.add_process(Process::new(format!("L{i}"))))
            .collect();
        for &l in &leaves {
            app.add_flow(Flow::new(hub, l, 100, 1, 1)).unwrap();
        }
        let tool = PlaceTool::new(&app, 2);
        for pl in [tool.greedy(), tool.exhaustive().unwrap(), tool.best(1)] {
            assert!(tool.feasible(&pl.allocation));
            assert!(pl.allocation.count_on(SegmentId(0)) >= 1);
            assert!(pl.allocation.count_on(SegmentId(1)) >= 1);
        }
    }

    #[test]
    fn exhaustive_bails_on_large_instances() {
        let app = segbus_apps::generators::random_layered(
            6,
            5,
            3,
            segbus_apps::generators::GeneratorConfig::default(),
        );
        // 3^30 is far beyond the cap.
        assert!(PlaceTool::new(&app, 3).exhaustive().is_none());
    }

    #[test]
    fn heuristics_close_to_exact_on_random_instances() {
        let cfg = segbus_apps::generators::GeneratorConfig::default();
        for seed in 0..4 {
            let app = segbus_apps::generators::random_layered(3, 3, seed, cfg);
            let tool = PlaceTool::new(&app, 2);
            let exact = tool.exhaustive().unwrap();
            let best = tool.best(seed);
            assert!(
                best.cost <= exact.cost + exact.cost / 5 + 36,
                "seed {seed}: best {} vs exact {}",
                best.cost,
                exact.cost
            );
        }
    }

    #[test]
    fn determinism_of_seeded_solvers() {
        let app = two_cliques();
        let tool = PlaceTool::new(&app, 2);
        assert_eq!(tool.anneal(11, 500), tool.anneal(11, 500));
        assert_eq!(tool.best(11), tool.best(11));
    }

    #[test]
    fn packages_objective_differs_from_items() {
        let mut app = Application::new("obj");
        let a = app.add_process(Process::new("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::new("C"));
        // 35 items = 1 package; 37 items = 2 packages.
        app.add_flow(Flow::new(a, b, 35, 1, 1)).unwrap();
        app.add_flow(Flow::new(a, c, 37, 1, 1)).unwrap();
        let alloc = Allocation::from_groups(&[&[0], &[1], &[2]]);
        let items = PlaceTool::new(&app, 3).cost(&alloc);
        assert_eq!(items, 35 + 2 * 37);
        let pkgs = PlaceTool::new(&app, 3)
            .with_objective(Objective::Packages(36))
            .cost(&alloc);
        assert_eq!(pkgs, 1 + 2 * 2);
    }

    #[test]
    fn ring_topology_changes_the_optimum() {
        // A 4-stage pipeline wrapped around: stage 0 talks to stage 3,
        // adjacent on the ring but far apart on the line.
        let mut app = Application::new("wrap");
        let p: Vec<ProcessId> = (0..4)
            .map(|i| app.add_process(Process::new(format!("P{i}"))))
            .collect();
        app.add_flow(Flow::new(p[0], p[3], 1000, 1, 1)).unwrap();
        app.add_flow(Flow::new(p[1], p[2], 1000, 1, 1)).unwrap();
        let alloc = Allocation::from_groups(&[&[0], &[1], &[2], &[3]]);
        let linear = PlaceTool::new(&app, 4).cost(&alloc);
        let ring = PlaceTool::new(&app, 4)
            .with_topology(segbus_model::platform::Topology::Ring)
            .cost(&alloc);
        // Linear: P0->P3 costs 3 hops; ring: 1 hop over the wrap unit.
        assert_eq!(linear, 3000 + 1000);
        assert_eq!(ring, 1000 + 1000);
        // The exhaustive ring solver exploits the wrap link.
        let best = PlaceTool::new(&app, 4)
            .with_topology(segbus_model::platform::Topology::Ring)
            .exhaustive()
            .unwrap();
        assert!(best.cost <= 2000);
    }

    #[test]
    #[should_panic(expected = "more segments than processes")]
    fn too_many_segments_rejected() {
        let mut app = Application::new("tiny");
        app.add_process(Process::new("A"));
        let _ = PlaceTool::new(&app, 2);
    }

    // -- emulation-in-the-loop ------------------------------------------------

    /// A schedulable application (the clique fixtures violate the wave
    /// ordering rule and cannot become a PSM).
    fn pipeline_app() -> Application {
        segbus_apps::generators::chain(6, segbus_apps::generators::GeneratorConfig::default())
    }

    fn two_segment_platform() -> Platform {
        Platform::builder("t")
            .uniform_segments(2, segbus_model::time::ClockDomain::from_mhz(100.0))
            .build()
            .unwrap()
    }

    #[test]
    fn makespan_cost_matches_the_emulator() {
        let app = pipeline_app();
        let platform = two_segment_platform();
        let tool = PlaceTool::new(&app, 2).with_makespan(&platform);
        let alloc = Allocation::from_groups(&[&[0, 1, 2], &[3, 4, 5]]);
        let reference = segbus_core::Emulator::default()
            .run(&Psm::new(platform.clone(), app.clone(), alloc.clone()).unwrap())
            .makespan
            .0;
        assert_eq!(tool.cost(&alloc), reference);
    }

    #[test]
    fn makespan_refine_never_worsens_the_schedule() {
        let app = pipeline_app();
        let platform = two_segment_platform();
        let tool = PlaceTool::new(&app, 2).with_makespan(&platform);
        // Deliberately bad but feasible start: alternate the stages so
        // every flow crosses the border.
        let start = Allocation::from_groups(&[&[0, 2, 4], &[1, 3, 5]]);
        let start_makespan = tool.cost(&start);
        let refined = tool.refine(start);
        assert!(tool.feasible(&refined.allocation));
        assert!(refined.cost <= start_makespan);
        assert_eq!(refined.cost, tool.cost(&refined.allocation));
    }

    #[test]
    fn makespan_best_is_deterministic_and_no_worse_than_greedy() {
        let app = pipeline_app();
        let platform = two_segment_platform();
        let tool = PlaceTool::new(&app, 2).with_makespan(&platform);
        let best = tool.best(3);
        assert!(tool.feasible(&best.allocation));
        assert!(best.cost <= tool.greedy().cost);
        assert_eq!(best, tool.best(3));
    }

    #[test]
    fn makespan_evaluations_are_memoised() {
        let app = pipeline_app();
        let platform = two_segment_platform();
        let tool = PlaceTool::new(&app, 2).with_makespan(&platform);
        let base = delta::EvalBase::new(&tool);
        let mut eval = Evaluator::new(&tool, &base);
        let a = Allocation::from_groups(&[&[0, 1, 2], &[3, 4, 5]]);
        let b = Allocation::from_groups(&[&[0, 1], &[2, 3, 4, 5]]);
        let first = eval.cost(&a);
        assert_eq!(eval.cost(&a), first);
        assert_eq!(eval.misses, 1, "repeat candidate must hit the memo");
        let _ = eval.cost(&b);
        assert_eq!(eval.misses, 2);
        assert_eq!(eval.cost(&b), eval.cost(&b));
        assert_eq!(eval.misses, 2);
    }

    #[test]
    #[should_panic(expected = "use with_makespan")]
    fn bare_makespan_objective_rejected() {
        let app = two_cliques();
        let _ = PlaceTool::new(&app, 2).with_objective(Objective::Makespan);
    }
}
