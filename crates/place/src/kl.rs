//! Kernighan–Lin bipartitioning for two-segment platforms.
//!
//! The classic KL pass: starting from a balanced bipartition, repeatedly
//! pick the swap sequence with the best cumulative gain and commit its
//! best prefix. For the two-segment SegBus case this typically beats the
//! greedy constructive heuristic and matches the exhaustive optimum on
//! small instances, at a fraction of the annealing budget.

use segbus_model::ids::{ProcessId, SegmentId};
use segbus_model::mapping::Allocation;
use segbus_model::psdf::Application;

use crate::{Objective, Placement};

/// Run Kernighan–Lin bipartitioning over the application's communication
/// graph, weighted by the given objective, with at most `max_passes`
/// outer passes per start (a pass that yields no gain terminates early).
///
/// Three deterministic balanced seed partitions are tried (block split,
/// interleaved split, reverse block split) and the best result wins. Every
/// pass preserves the `ceil(n/2)` / `floor(n/2)` balance (KL swaps
/// pairs), so the result is always feasible for a two-segment platform
/// without capacity constraints.
///
/// # Panics
/// Panics if the application has fewer than two processes.
pub fn kernighan_lin(app: &Application, objective: Objective, max_passes: usize) -> Placement {
    let n = app.process_count();
    assert!(n >= 2, "bipartitioning needs at least two processes");
    let half = n.div_ceil(2);
    let seeds: [Vec<bool>; 3] = [
        (0..n).map(|i| i >= half).collect(),
        (0..n).map(|i| i % 2 == 1).collect::<Vec<_>>(),
        (0..n).map(|i| i < n - half).collect(),
    ];
    let mut best: Option<Placement> = None;
    for mut seed in seeds {
        // Repair the interleaved seed if rounding unbalanced it.
        let mut ones = seed.iter().filter(|&&b| b).count();
        for b in seed.iter_mut() {
            if ones == n - half {
                break;
            }
            if ones > n - half && *b {
                *b = false;
                ones -= 1;
            } else if ones < n - half && !*b {
                *b = true;
                ones += 1;
            }
        }
        let pl = kl_from(app, objective, max_passes, seed);
        if best.as_ref().map(|b| pl.cost < b.cost).unwrap_or(true) {
            best = Some(pl);
        }
    }
    best.expect("at least one seed ran")
}

/// One KL run from a given seed partition.
fn kl_from(
    app: &Application,
    objective: Objective,
    max_passes: usize,
    mut side: Vec<bool>,
) -> Placement {
    let n = app.process_count();
    // Symmetric weight matrix from the flows.
    let weight = |f: &segbus_model::psdf::Flow| match objective {
        // KL only ever sees hop-count surrogates; `best` maps Makespan to
        // Items before calling in.
        Objective::Items | Objective::Makespan => f.items,
        Objective::Packages(s) => f.packages(s),
    };
    let mut w = vec![0u64; n * n];
    for f in app.flows() {
        let (a, b) = (f.src.index(), f.dst.index());
        w[a * n + b] += weight(f);
        w[b * n + a] += weight(f);
    }

    // External minus internal cost of a vertex under the current sides.
    let d_value = |side: &[bool], v: usize| -> i64 {
        let mut d = 0i64;
        for u in 0..n {
            if u == v {
                continue;
            }
            let wv = w[v * n + u] as i64;
            if side[u] != side[v] {
                d += wv;
            } else {
                d -= wv;
            }
        }
        d
    };

    for _pass in 0..max_passes.max(1) {
        let mut locked = vec![false; n];
        let mut trial = side.clone();
        // Gain sequence of tentative swaps.
        let mut gains: Vec<(i64, usize, usize)> = Vec::new();
        let pairs = n / 2;
        for _ in 0..pairs {
            // Best unlocked cross pair by KL gain g = d(a) + d(b) - 2w(a,b).
            let mut best: Option<(i64, usize, usize)> = None;
            for a in 0..n {
                if locked[a] || trial[a] {
                    continue;
                }
                let da = d_value(&trial, a);
                for b in 0..n {
                    if locked[b] || !trial[b] {
                        continue;
                    }
                    let g = da + d_value(&trial, b) - 2 * w[a * n + b] as i64;
                    if best.map(|(bg, _, _)| g > bg).unwrap_or(true) {
                        best = Some((g, a, b));
                    }
                }
            }
            let Some((g, a, b)) = best else { break };
            trial.swap(a, b);
            locked[a] = true;
            locked[b] = true;
            gains.push((g, a, b));
        }
        // Commit the best prefix.
        let mut run = 0i64;
        let mut best_sum = 0i64;
        let mut best_k = 0usize;
        for (k, (g, _, _)) in gains.iter().enumerate() {
            run += g;
            if run > best_sum {
                best_sum = run;
                best_k = k + 1;
            }
        }
        if best_sum <= 0 {
            break; // converged
        }
        for &(_, a, b) in gains.iter().take(best_k) {
            side.swap(a, b);
        }
    }

    let mut alloc = Allocation::new(2);
    for (i, &s) in side.iter().enumerate() {
        alloc.assign(ProcessId(i as u32), SegmentId(s as u16));
    }
    let cost = match objective {
        Objective::Items | Objective::Makespan => alloc.weighted_cut(app),
        Objective::Packages(s) => alloc.package_cut(app, s),
    };
    Placement {
        allocation: alloc,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlaceTool;
    use segbus_model::psdf::{Flow, Process};

    fn two_cliques() -> Application {
        let mut app = Application::new("cliques");
        let p: Vec<ProcessId> = (0..6)
            .map(|i| app.add_process(Process::new(format!("P{i}"))))
            .collect();
        for (a, b) in [(0, 1), (1, 2), (3, 4), (4, 5)] {
            app.add_flow(Flow::new(p[a], p[b], 1000, 1, 1)).unwrap();
        }
        app.add_flow(Flow::new(p[2], p[3], 36, 2, 1)).unwrap();
        app
    }

    #[test]
    fn kl_finds_the_clique_cut() {
        let app = two_cliques();
        let pl = kernighan_lin(&app, Objective::Items, 8);
        assert_eq!(pl.cost, 36, "KL must separate the cliques");
        let t = PlaceTool::new(&app, 2);
        assert!(t.feasible(&pl.allocation));
    }

    #[test]
    fn kl_is_balanced() {
        let app = two_cliques();
        let pl = kernighan_lin(&app, Objective::Items, 4);
        assert_eq!(pl.allocation.count_on(SegmentId(0)), 3);
        assert_eq!(pl.allocation.count_on(SegmentId(1)), 3);
    }

    /// The optimum over *balanced* bipartitions (KL's own search space),
    /// by brute force — small n only.
    fn balanced_optimum(app: &Application) -> u64 {
        let n = app.process_count();
        let half = n.div_ceil(2);
        let mut best = u64::MAX;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != half {
                continue;
            }
            let mut alloc = Allocation::new(2);
            for i in 0..n {
                let side = (mask >> i) & 1 == 1;
                alloc.assign(ProcessId(i as u32), SegmentId(side as u16));
            }
            best = best.min(alloc.weighted_cut(app));
        }
        best
    }

    #[test]
    fn kl_matches_balanced_optimum_on_random_instances() {
        use segbus_apps::generators::{random_layered, GeneratorConfig};
        for seed in 0..6 {
            let app = random_layered(3, 3, seed, GeneratorConfig::default());
            let optimum = balanced_optimum(&app);
            let kl = kernighan_lin(&app, Objective::Items, 10);
            // KL is a pass-based heuristic: on tiny, densely weighted
            // graphs it can stall in a local minimum a small factor above
            // the balanced optimum (its strength is larger sparse graphs,
            // cf. the exact clique-cut test). Bound the damage at 3x.
            assert!(
                kl.cost <= optimum.saturating_mul(3).max(optimum + 144),
                "seed {seed}: kl {} vs balanced optimum {optimum}",
                kl.cost
            );
            assert!(kl.cost >= optimum, "KL cannot beat the exact optimum");
        }
    }

    #[test]
    fn kl_never_worse_than_untouched_split_seed() {
        let app = two_cliques();
        // The seed split (first half / second half) has cost: flows
        // crossing P2|P3 boundary: P2->P3 bridge only = 36. KL keeps it.
        let pl = kernighan_lin(&app, Objective::Packages(36), 4);
        assert!(pl.cost <= 1);
    }

    #[test]
    #[should_panic(expected = "at least two processes")]
    fn kl_rejects_singleton() {
        let mut app = Application::new("one");
        app.add_process(Process::new("A"));
        let _ = kernighan_lin(&app, Objective::Items, 1);
    }
}
