//! Derivation of per-arbiter schedules from a validated PSM.
//!
//! The schedule is the static counterpart of what the emulator does
//! dynamically: flows grouped into waves, each flow expanded into its
//! per-segment jobs (local transfer, source fill, BU forward, BU deliver)
//! and, for inter-segment flows, a CA path-reservation job.

use segbus_model::ids::{FlowId, ProcessId, SegmentId};
use segbus_model::mapping::Psm;

/// One job in a segment arbiter's schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SaJob {
    /// Grant the local bus to `src` for `packages` packages headed to the
    /// local process `dst`.
    Local {
        /// The flow being served.
        flow: FlowId,
        /// Local producer.
        src: ProcessId,
        /// Local consumer.
        dst: ProcessId,
        /// Number of packages.
        packages: u64,
    },
    /// Grant the local bus to `src` to fill the border unit toward
    /// `toward` (first hop of an inter-segment transfer).
    SourceFill {
        /// The flow being served.
        flow: FlowId,
        /// Local producer.
        src: ProcessId,
        /// Neighbouring segment the BU leads to.
        toward: SegmentId,
        /// Number of packages.
        packages: u64,
    },
    /// Unload the BU on the `from` side and push the package onward into
    /// the BU toward `toward` (transit segment of a multi-hop transfer).
    BuForward {
        /// The flow being served.
        flow: FlowId,
        /// Neighbouring segment the package comes from.
        from: SegmentId,
        /// Neighbouring segment it continues to.
        toward: SegmentId,
        /// Number of packages.
        packages: u64,
    },
    /// Unload the BU on the `from` side and deliver to the local process
    /// `dst` (final hop).
    BuDeliver {
        /// The flow being served.
        flow: FlowId,
        /// Neighbouring segment the package comes from.
        from: SegmentId,
        /// Local consumer.
        dst: ProcessId,
        /// Number of packages.
        packages: u64,
    },
}

impl SaJob {
    /// Packages this job moves.
    pub fn packages(&self) -> u64 {
        match self {
            SaJob::Local { packages, .. }
            | SaJob::SourceFill { packages, .. }
            | SaJob::BuForward { packages, .. }
            | SaJob::BuDeliver { packages, .. } => *packages,
        }
    }

    /// The flow this job belongs to.
    pub fn flow(&self) -> FlowId {
        match self {
            SaJob::Local { flow, .. }
            | SaJob::SourceFill { flow, .. }
            | SaJob::BuForward { flow, .. }
            | SaJob::BuDeliver { flow, .. } => *flow,
        }
    }
}

/// One path reservation in the central arbiter's schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CaJob {
    /// The flow being served.
    pub flow: FlowId,
    /// Ordering wave the flow belongs to.
    pub wave: u32,
    /// Source segment.
    pub from: SegmentId,
    /// Destination segment.
    pub to: SegmentId,
    /// Segments to reserve, in travel order.
    pub path: Vec<SegmentId>,
    /// Number of packages (= number of grants for this flow).
    pub packages: u64,
}

/// The complete static schedule of a configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SystemSchedule {
    /// Per-segment job lists, wave-major then flow order.
    pub sa: Vec<Vec<(u32, SaJob)>>,
    /// CA reservations, wave-major then flow order.
    pub ca: Vec<CaJob>,
    /// Package size the schedule was expanded for.
    pub package_size: u32,
}

impl SystemSchedule {
    /// Derive the schedule from a validated PSM.
    pub fn derive(psm: &Psm) -> SystemSchedule {
        let app = psm.application();
        let platform = psm.platform();
        let s = platform.package_size();
        let mut sa: Vec<Vec<(u32, SaJob)>> = vec![Vec::new(); platform.segment_count()];
        let mut ca = Vec::new();
        for wave in app.waves() {
            for fid in wave.flows {
                let f = app.flow(fid);
                let pkgs = f.packages(s);
                let from = psm.segment_of(f.src);
                let to = psm.segment_of(f.dst);
                if from == to {
                    sa[from.index()].push((
                        wave.order,
                        SaJob::Local {
                            flow: fid,
                            src: f.src,
                            dst: f.dst,
                            packages: pkgs,
                        },
                    ));
                    continue;
                }
                let path = platform.path_segments(from, to);
                ca.push(CaJob {
                    flow: fid,
                    wave: wave.order,
                    from,
                    to,
                    path: path.clone(),
                    packages: pkgs,
                });
                for (hop, &m) in path.iter().enumerate() {
                    let job = if hop == 0 {
                        SaJob::SourceFill {
                            flow: fid,
                            src: f.src,
                            toward: path[1],
                            packages: pkgs,
                        }
                    } else if hop == path.len() - 1 {
                        SaJob::BuDeliver {
                            flow: fid,
                            from: path[hop - 1],
                            dst: f.dst,
                            packages: pkgs,
                        }
                    } else {
                        SaJob::BuForward {
                            flow: fid,
                            from: path[hop - 1],
                            toward: path[hop + 1],
                            packages: pkgs,
                        }
                    };
                    sa[m.index()].push((wave.order, job));
                }
            }
        }
        SystemSchedule {
            sa,
            ca,
            package_size: s,
        }
    }

    /// Number of segments covered.
    pub fn segment_count(&self) -> usize {
        self.sa.len()
    }

    /// Inter-segment requests this schedule predicts for a segment's SA
    /// (one per package of every flow whose source fill happens there).
    pub fn predicted_inter_requests(&self, seg: SegmentId) -> u64 {
        self.sa[seg.index()]
            .iter()
            .map(|(_, j)| match j {
                SaJob::SourceFill { packages, .. } => *packages,
                _ => 0,
            })
            .sum()
    }

    /// Intra-segment work this schedule predicts for a segment's SA:
    /// local packages plus routed BU unloads (forwards and deliveries).
    pub fn predicted_intra_requests(&self, seg: SegmentId) -> u64 {
        self.sa[seg.index()]
            .iter()
            .map(|(_, j)| match j {
                SaJob::Local { packages, .. }
                | SaJob::BuForward { packages, .. }
                | SaJob::BuDeliver { packages, .. } => *packages,
                SaJob::SourceFill { .. } => 0,
            })
            .sum()
    }

    /// Path grants this schedule predicts for the CA (one per package of
    /// every inter-segment flow).
    pub fn predicted_ca_grants(&self) -> u64 {
        self.ca.iter().map(|j| j.packages).sum()
    }

    /// Cascade releases the CA will perform: one per traversed segment per
    /// package.
    pub fn predicted_ca_releases(&self) -> u64 {
        self.ca
            .iter()
            .map(|j| j.packages * j.path.len() as u64)
            .sum()
    }

    /// Packages the schedule pushes into the BU right of `seg` (i.e. from
    /// `seg` toward `seg+1`), counting fills and forwards.
    pub fn predicted_bu_right_loads(&self, seg: SegmentId) -> u64 {
        let next = SegmentId(seg.0 + 1);
        self.sa[seg.index()]
            .iter()
            .map(|(_, j)| match j {
                SaJob::SourceFill {
                    toward, packages, ..
                }
                | SaJob::BuForward {
                    toward, packages, ..
                } if *toward == next => *packages,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_apps::mp3;

    #[test]
    fn mp3_schedule_predicts_paper_counters() {
        let psm = mp3::three_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        assert_eq!(sched.segment_count(), 3);
        // The §4 print-out: 32 / 0 / 1 inter-segment requests.
        assert_eq!(sched.predicted_inter_requests(SegmentId(0)), 32);
        assert_eq!(sched.predicted_inter_requests(SegmentId(1)), 0);
        assert_eq!(sched.predicted_inter_requests(SegmentId(2)), 1);
        // 33 grants, and the cascade: (31×2 + 1×3) + 1×2 hops... computed:
        assert_eq!(sched.predicted_ca_grants(), 33);
        // P3->P4 crosses 3 segments (1 pkg), P4->P5 crosses 2 (1 pkg), the
        // other 31 packages cross 2 segments each.
        assert_eq!(sched.predicted_ca_releases(), 31 * 2 + 3 + 2);
        // BU12 rightward loads: the paper's 32.
        assert_eq!(sched.predicted_bu_right_loads(SegmentId(0)), 32);
    }

    #[test]
    fn schedule_matches_emulated_counters() {
        for psm in [
            mp3::three_segment_psm(),
            mp3::two_segment_psm(),
            mp3::three_segment_p9_moved_psm(),
        ] {
            let sched = SystemSchedule::derive(&psm);
            let report = segbus_core::Emulator::default().run(&psm);
            for i in 0..sched.segment_count() {
                let seg = SegmentId(i as u16);
                assert_eq!(
                    sched.predicted_inter_requests(seg),
                    report.sas[i].inter_requests,
                    "inter requests, segment {i}"
                );
                assert_eq!(
                    sched.predicted_intra_requests(seg),
                    report.sas[i].intra_requests,
                    "intra requests, segment {i}"
                );
            }
            assert_eq!(sched.predicted_ca_grants(), report.ca.grants);
            assert_eq!(sched.predicted_ca_releases(), report.ca.releases);
        }
    }

    #[test]
    fn jobs_are_wave_ordered() {
        let psm = mp3::three_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        for seg in &sched.sa {
            let waves: Vec<u32> = seg.iter().map(|(w, _)| *w).collect();
            let mut sorted = waves.clone();
            sorted.sort();
            assert_eq!(waves, sorted, "jobs must be listed wave-major");
        }
        let ca_waves: Vec<u32> = sched.ca.iter().map(|j| j.wave).collect();
        let mut sorted = ca_waves.clone();
        sorted.sort();
        assert_eq!(ca_waves, sorted);
    }

    #[test]
    fn transit_segment_gets_forward_jobs() {
        // P3 (seg1) -> P4 (seg3) transits segment 2.
        let psm = mp3::three_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        let forwards: Vec<_> = sched.sa[1]
            .iter()
            .filter(|(_, j)| matches!(j, SaJob::BuForward { .. }))
            .collect();
        assert_eq!(forwards.len(), 1);
        if let (
            _,
            SaJob::BuForward {
                from,
                toward,
                packages,
                ..
            },
        ) = forwards[0]
        {
            assert_eq!(*from, SegmentId(0));
            assert_eq!(*toward, SegmentId(2));
            assert_eq!(*packages, 1);
        }
    }

    #[test]
    fn accessors() {
        let psm = mp3::three_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        let (_, first) = &sched.sa[0][0];
        assert!(first.packages() > 0);
        let _ = first.flow();
        assert_eq!(sched.package_size, 36);
    }
}
