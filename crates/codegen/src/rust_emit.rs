//! Rust backend: render a [`SystemSchedule`] as `const` tables.
//!
//! The output is a self-contained `.rs` module with no dependencies: one
//! `SA_SCHEDULE_<n>` table per segment arbiter and one `CA_SCHEDULE`
//! table, each entry carrying the wave, the job kind and its operands.
//! Firmware, another simulator, or the arbiters themselves can link the
//! tables directly.

use std::fmt::Write as _;

use segbus_model::mapping::Psm;

use crate::schedule::{SaJob, SystemSchedule};

/// Render the schedule as a Rust source file.
pub fn to_rust(psm: &Psm, sched: &SystemSchedule) -> String {
    let app = psm.application();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "//! Auto-generated SegBus arbiter schedules for application {:?}\n\
         //! on platform {:?} (package size {}). Do not edit.\n",
        app.name(),
        psm.platform().name(),
        sched.package_size
    );
    out.push_str(
        "/// One segment-arbiter job.\n\
         #[derive(Clone, Copy, PartialEq, Eq, Debug)]\n\
         pub enum SaJob {\n\
         \x20   /// Local transfer: (producer, consumer).\n\
         \x20   Local(u32, u32),\n\
         \x20   /// Fill the BU toward a neighbour segment: (producer, neighbour).\n\
         \x20   SourceFill(u32, u16),\n\
         \x20   /// Forward from one BU into the next: (from segment, to segment).\n\
         \x20   BuForward(u16, u16),\n\
         \x20   /// Deliver from a BU to a local consumer: (from segment, consumer).\n\
         \x20   BuDeliver(u16, u32),\n\
         }\n\n\
         /// A scheduled entry: (wave, job, packages).\n\
         pub type Entry = (u32, SaJob, u64);\n\n",
    );
    for (i, jobs) in sched.sa.iter().enumerate() {
        let _ = writeln!(
            out,
            "/// Schedule of SA{} ({} entries).\npub const SA_SCHEDULE_{}: [Entry; {}] = [",
            i + 1,
            jobs.len(),
            i + 1,
            jobs.len()
        );
        for (wave, job) in jobs {
            let rendered = match job {
                SaJob::Local {
                    src, dst, packages, ..
                } => {
                    format!("({wave}, SaJob::Local({}, {}), {packages})", src.0, dst.0)
                }
                SaJob::SourceFill {
                    src,
                    toward,
                    packages,
                    ..
                } => {
                    format!(
                        "({wave}, SaJob::SourceFill({}, {}), {packages})",
                        src.0, toward.0
                    )
                }
                SaJob::BuForward {
                    from,
                    toward,
                    packages,
                    ..
                } => {
                    format!(
                        "({wave}, SaJob::BuForward({}, {}), {packages})",
                        from.0, toward.0
                    )
                }
                SaJob::BuDeliver {
                    from,
                    dst,
                    packages,
                    ..
                } => {
                    format!(
                        "({wave}, SaJob::BuDeliver({}, {}), {packages})",
                        from.0, dst.0
                    )
                }
            };
            let _ = writeln!(out, "    {rendered},");
        }
        out.push_str("];\n\n");
    }
    let _ = writeln!(
        out,
        "/// CA path reservations: (wave, source segment, destination segment, packages).\n\
         pub const CA_SCHEDULE: [(u32, u16, u16, u64); {}] = [",
        sched.ca.len()
    );
    for j in &sched.ca {
        let _ = writeln!(
            out,
            "    ({}, {}, {}, {}),",
            j.wave, j.from.0, j.to.0, j.packages
        );
    }
    out.push_str("];\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SystemSchedule;
    use segbus_apps::mp3;

    #[test]
    fn generated_rust_has_all_tables() {
        let psm = mp3::three_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        let src = to_rust(&psm, &sched);
        assert!(src.contains("pub const SA_SCHEDULE_1:"));
        assert!(src.contains("pub const SA_SCHEDULE_2:"));
        assert!(src.contains("pub const SA_SCHEDULE_3:"));
        assert!(src.contains("pub const CA_SCHEDULE:"));
        assert!(src.contains("enum SaJob"));
        // One source-fill entry per inter-segment flow.
        assert_eq!(src.matches("SaJob::SourceFill").count(), sched.ca.len());
    }

    #[test]
    fn entry_counts_match_schedule() {
        let psm = mp3::three_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        let src = to_rust(&psm, &sched);
        for (i, jobs) in sched.sa.iter().enumerate() {
            let header = format!("SA_SCHEDULE_{}: [Entry; {}]", i + 1, jobs.len());
            assert!(src.contains(&header), "missing {header}");
        }
        assert!(src.contains(&format!("[(u32, u16, u16, u64); {}]", sched.ca.len())));
    }

    #[test]
    fn generated_rust_parses_as_rust() {
        // Cheap syntactic sanity: balanced brackets and no empty enums.
        let psm = mp3::two_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        let src = to_rust(&psm, &sched);
        assert_eq!(src.matches('[').count(), src.matches(']').count());
        assert_eq!(src.matches('(').count(), src.matches(')').count());
        assert_eq!(src.matches('{').count(), src.matches('}').count());
    }
}
