//! Rust backend: render a [`SystemSchedule`] as `const` tables.
//!
//! The output is a self-contained `.rs` module with no dependencies: one
//! `SA_SCHEDULE_<n>` table per segment arbiter and one `CA_SCHEDULE`
//! table, each entry carrying the wave, the job kind and its operands.
//! Firmware, another simulator, or the arbiters themselves can link the
//! tables directly.
//!
//! Alongside the tables the module carries a standalone stepper,
//! `SaStepper`, that replays one arbiter's table a single bus grant at a
//! time — the same wave-major order the in-process fast core walks its
//! precomputed schedule slices in — so the firmware-export story stays
//! in lock-step with the engine. CI compile-checks the emitted module
//! (`rustc --edition 2021 --crate-type lib`) so generated code cannot
//! silently rot.

use std::fmt::Write as _;

use segbus_model::mapping::Psm;

use crate::schedule::{SaJob, SystemSchedule};

/// Render the schedule as a Rust source file.
pub fn to_rust(psm: &Psm, sched: &SystemSchedule) -> String {
    let app = psm.application();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "//! Auto-generated SegBus arbiter schedules for application {:?}\n\
         //! on platform {:?} (package size {}). Do not edit.\n",
        app.name(),
        psm.platform().name(),
        sched.package_size
    );
    out.push_str(
        "/// One segment-arbiter job.\n\
         #[derive(Clone, Copy, PartialEq, Eq, Debug)]\n\
         pub enum SaJob {\n\
         \x20   /// Local transfer: (producer, consumer).\n\
         \x20   Local(u32, u32),\n\
         \x20   /// Fill the BU toward a neighbour segment: (producer, neighbour).\n\
         \x20   SourceFill(u32, u16),\n\
         \x20   /// Forward from one BU into the next: (from segment, to segment).\n\
         \x20   BuForward(u16, u16),\n\
         \x20   /// Deliver from a BU to a local consumer: (from segment, consumer).\n\
         \x20   BuDeliver(u16, u32),\n\
         }\n\n\
         /// A scheduled entry: (wave, job, packages).\n\
         pub type Entry = (u32, SaJob, u64);\n\n\
         /// Replays one arbiter's schedule a single bus grant at a time.\n\
         ///\n\
         /// Each [`Entry`] covers `packages` grants; the stepper yields them\n\
         /// one by one in table order — the wave-major order the emulator's\n\
         /// arbitration produces dynamically. Drive firmware or a\n\
         /// co-simulation by calling [`SaStepper::next_grant`] once per\n\
         /// granted bus transfer.\n\
         pub struct SaStepper {\n\
         \x20   entries: &'static [Entry],\n\
         \x20   pos: usize,\n\
         \x20   left: u64,\n\
         }\n\n\
         impl SaStepper {\n\
         \x20   /// A stepper positioned at the first grant of `entries`.\n\
         \x20   pub const fn new(entries: &'static [Entry]) -> SaStepper {\n\
         \x20       let left = if entries.is_empty() { 0 } else { entries[0].2 };\n\
         \x20       SaStepper { entries, pos: 0, left }\n\
         \x20   }\n\n\
         \x20   /// The next bus grant as `(wave, job)`, or `None` once the\n\
         \x20   /// schedule is exhausted.\n\
         \x20   pub fn next_grant(&mut self) -> Option<(u32, SaJob)> {\n\
         \x20       while self.left == 0 {\n\
         \x20           self.pos += 1;\n\
         \x20           if self.pos >= self.entries.len() {\n\
         \x20               return None;\n\
         \x20           }\n\
         \x20           self.left = self.entries[self.pos].2;\n\
         \x20       }\n\
         \x20       self.left -= 1;\n\
         \x20       let (wave, job, _) = self.entries[self.pos];\n\
         \x20       Some((wave, job))\n\
         \x20   }\n\n\
         \x20   /// Grants not yet yielded.\n\
         \x20   pub const fn remaining(&self) -> u64 {\n\
         \x20       let mut n = self.left;\n\
         \x20       let mut i = self.pos + 1;\n\
         \x20       while i < self.entries.len() {\n\
         \x20           n += self.entries[i].2;\n\
         \x20           i += 1;\n\
         \x20       }\n\
         \x20       n\n\
         \x20   }\n\
         }\n\n",
    );
    for (i, jobs) in sched.sa.iter().enumerate() {
        let _ = writeln!(
            out,
            "/// Schedule of SA{} ({} entries).\npub const SA_SCHEDULE_{}: [Entry; {}] = [",
            i + 1,
            jobs.len(),
            i + 1,
            jobs.len()
        );
        for (wave, job) in jobs {
            let rendered = match job {
                SaJob::Local {
                    src, dst, packages, ..
                } => {
                    format!("({wave}, SaJob::Local({}, {}), {packages})", src.0, dst.0)
                }
                SaJob::SourceFill {
                    src,
                    toward,
                    packages,
                    ..
                } => {
                    format!(
                        "({wave}, SaJob::SourceFill({}, {}), {packages})",
                        src.0, toward.0
                    )
                }
                SaJob::BuForward {
                    from,
                    toward,
                    packages,
                    ..
                } => {
                    format!(
                        "({wave}, SaJob::BuForward({}, {}), {packages})",
                        from.0, toward.0
                    )
                }
                SaJob::BuDeliver {
                    from,
                    dst,
                    packages,
                    ..
                } => {
                    format!(
                        "({wave}, SaJob::BuDeliver({}, {}), {packages})",
                        from.0, dst.0
                    )
                }
            };
            let _ = writeln!(out, "    {rendered},");
        }
        out.push_str("];\n\n");
    }
    let _ = writeln!(
        out,
        "/// CA path reservations: (wave, source segment, destination segment, packages).\n\
         pub const CA_SCHEDULE: [(u32, u16, u16, u64); {}] = [",
        sched.ca.len()
    );
    for j in &sched.ca {
        let _ = writeln!(
            out,
            "    ({}, {}, {}, {}),",
            j.wave, j.from.0, j.to.0, j.packages
        );
    }
    out.push_str("];\n\n");
    let refs: Vec<String> = (1..=sched.sa.len())
        .map(|i| format!("&SA_SCHEDULE_{i}"))
        .collect();
    let _ = writeln!(
        out,
        "/// Every segment-arbiter schedule, SA1 first.\n\
         pub const SA_SCHEDULES: [&[Entry]; {}] = [{}];\n",
        sched.sa.len(),
        refs.join(", ")
    );
    out.push_str(
        "/// Total bus grants across every arbiter schedule — one grant per\n\
         /// package of every job, the sum a full [`SaStepper`] walk yields.\n\
         pub const fn total_grants() -> u64 {\n\
         \x20   let mut n = 0;\n\
         \x20   let mut s = 0;\n\
         \x20   while s < SA_SCHEDULES.len() {\n\
         \x20       let t = SA_SCHEDULES[s];\n\
         \x20       let mut i = 0;\n\
         \x20       while i < t.len() {\n\
         \x20           n += t[i].2;\n\
         \x20           i += 1;\n\
         \x20       }\n\
         \x20       s += 1;\n\
         \x20   }\n\
         \x20   n\n\
         }\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SystemSchedule;
    use segbus_apps::mp3;

    #[test]
    fn generated_rust_has_all_tables() {
        let psm = mp3::three_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        let src = to_rust(&psm, &sched);
        assert!(src.contains("pub const SA_SCHEDULE_1:"));
        assert!(src.contains("pub const SA_SCHEDULE_2:"));
        assert!(src.contains("pub const SA_SCHEDULE_3:"));
        assert!(src.contains("pub const CA_SCHEDULE:"));
        assert!(src.contains("enum SaJob"));
        // One source-fill entry per inter-segment flow.
        assert_eq!(src.matches("SaJob::SourceFill").count(), sched.ca.len());
    }

    #[test]
    fn entry_counts_match_schedule() {
        let psm = mp3::three_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        let src = to_rust(&psm, &sched);
        for (i, jobs) in sched.sa.iter().enumerate() {
            let header = format!("SA_SCHEDULE_{}: [Entry; {}]", i + 1, jobs.len());
            assert!(src.contains(&header), "missing {header}");
        }
        assert!(src.contains(&format!("[(u32, u16, u16, u64); {}]", sched.ca.len())));
    }

    #[test]
    fn stepper_and_totals_are_emitted() {
        let psm = mp3::three_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        let src = to_rust(&psm, &sched);
        assert!(src.contains("pub struct SaStepper"));
        assert!(src.contains("pub fn next_grant(&mut self) -> Option<(u32, SaJob)>"));
        assert!(src.contains(&format!(
            "pub const SA_SCHEDULES: [&[Entry]; {}]",
            sched.sa.len()
        )));
        assert!(src.contains("pub const fn total_grants() -> u64"));
    }

    #[test]
    fn emitted_module_compiles_standalone() {
        // The real guard is the CI codegen check (`rustc --edition 2021
        // --crate-type lib` on the mp3 model); this mirrors it wherever a
        // rustc happens to be on PATH and skips quietly otherwise.
        let psm = mp3::three_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        let src = to_rust(&psm, &sched);
        let dir = std::env::temp_dir().join(format!("segbus-rust-emit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src_path = dir.join("schedule.rs");
        std::fs::write(&src_path, &src).unwrap();
        let out = std::process::Command::new("rustc")
            .args(["--edition", "2021", "--crate-type", "lib", "-D", "warnings"])
            .arg("--out-dir")
            .arg(&dir)
            .arg(&src_path)
            .output();
        let out = match out {
            Ok(o) => o,
            Err(_) => return,
        };
        assert!(
            out.status.success(),
            "emitted module failed to compile:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generated_rust_parses_as_rust() {
        // Cheap syntactic sanity: balanced brackets and no empty enums.
        let psm = mp3::two_segment_psm();
        let sched = SystemSchedule::derive(&psm);
        let src = to_rust(&psm, &sched);
        assert_eq!(src.matches('[').count(), src.matches(']').count());
        assert_eq!(src.matches('(').count(), src.matches(')').count());
        assert_eq!(src.matches('{').count(), src.matches('}').count());
    }
}
