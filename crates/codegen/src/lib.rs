//! # segbus-codegen
//!
//! Arbiter code generation — the paper's stated future work ("extended
//! support is expected to come in the form of arbiter code generation, for
//! the implementation of the application schedules", §5).
//!
//! The paper's emulator already extracts the application schedule from the
//! PSDF and "implements it within the arbiters" (§3.3). This crate makes
//! that artifact first-class: [`schedule::SystemSchedule`] derives, from a
//! validated PSM, the exact ordered list of jobs every segment arbiter and
//! the central arbiter will perform — and two backends render it:
//!
//! * [`rust_emit`] — `const` Rust tables, suitable for embedding the
//!   schedule in firmware or another simulator;
//! * [`c_emit`] — a C89 header with `static const` schedule arrays for
//!   microcontroller-driven arbiters;
//! * [`vhdl`] — synthesisable-style VHDL skeletons: one entity per SA with
//!   a ROM of schedule entries and a case-based dispatcher, plus the CA's
//!   path-reservation ROM.
//!
//! The schedules are cross-validated against the emulator: for every
//! configuration, the generated tables predict exactly the request/grant
//! counters the emulation produces (see the tests here and in
//! `tests/codegen_consistency.rs`).

#![warn(missing_docs)]

pub mod c_emit;
pub mod rust_emit;
pub mod schedule;
pub mod vhdl;

pub use schedule::{CaJob, SaJob, SystemSchedule};
