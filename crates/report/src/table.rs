//! Plain-text table rendering for the experiment binaries.

use std::fmt;

/// A right-padded text table with a header row.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (no quoting — experiment cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<w$}", w = width[i])?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "10000"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("alpha"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.to_csv(), "a,b,c\n1,,\n");
    }
}
