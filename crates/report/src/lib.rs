//! # segbus-report
//!
//! The experiment harness: one function (and one binary under `src/bin/`)
//! per table or figure of the paper's evaluation, plus the ablations from
//! DESIGN.md §5. Every function returns structured rows so the test-suite
//! and the Criterion benches can assert on them; the binaries print the
//! same rows the paper reports.
//!
//! | binary | paper artifact |
//! |---|---|
//! | `exp_fig8` | Fig. 8 — the communication matrix |
//! | `exp_threeseg` | §4 results block — the 3-segment run print-out (E2) |
//! | `exp_fig10` | Fig. 10 — per-process progress timeline |
//! | `exp_fig11` | Fig. 11 — activity per element, package size 18 vs 36 |
//! | `exp_accuracy` | §4 — estimated vs actual for the three experiments (E5) |
//! | `exp_bu_util` | §4 — BU bottleneck analysis UP/TCT/W̄P (E6) |
//! | `exp_segments` | Fig. 9 configurations compared (E7) |
//! | `exp_place` | A1 — PlaceTool vs the hand allocation |
//! | `exp_sweep` | A2 — package-size sweep |
//! | `exp_costmodel` | A3 — cost-model ablation |
//! | `exp_clocks` | A5 — clock-frequency sensitivity |
//! | `exp_release` | A6 — producer flow-control ablation |
//! | `exp_apps` | A7 — the application library across segment counts |
//! | `exp_energy` | A8 — energy attribution per configuration |
//! | `exp_topology` | A9 — linear vs ring topology |
//! | `exp_arbitration` | A11 — SA arbitration policy under contention |
//! | `exp_streaming` | A12 — pipelined multi-frame throughput |
//! | `exp_gantt` | Gantt CSV of every bus occupation (plotting aid) |

#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::*;
pub use table::Table;
