//! Ablation A2: package-size sweep on the 3-segment configuration.
fn main() {
    println!("A2 — package-size sweep\n");
    print!(
        "{}",
        segbus_report::package_size_sweep(&segbus_report::SWEEP_SIZES)
    );
}
