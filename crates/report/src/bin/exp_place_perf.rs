//! P5 — placement-search throughput: an emulation-in-the-loop `best`
//! search (greedy → refine plus `RESTARTS` annealing chains → refine) on
//! an 8-process chain over 2 capacity-limited segments, timed against
//! the pre-change single-threaded search.
//!
//! * **baseline** — exactly the search a user could compose before the
//!   parallel subsystem existed: the public sequential solvers
//!   ([`PlaceTool::greedy`]/[`refine`]/[`anneal`]), one call per restart.
//!   Every call owns a private evaluator, so candidates revisited across
//!   restarts — and the near-identical refine neighbourhoods every chain
//!   converges into — are re-emulated from scratch each time.
//! * **optimised** — [`PlaceTool::parallel`]: the same task set fanned
//!   out over 4 [`SweepPool`](segbus_core::SweepPool) workers with the
//!   shared allocation-digest memo, so across *all* tasks every distinct
//!   candidate is emulated exactly once. A fresh search is built per
//!   pass — the memo never carries over between measurements.
//!
//! The speedup is therefore algorithmic (deduplicated emulations) times
//! parallel (worker scaling); on a single-core machine the first factor
//! alone carries the result. The two legs are interleaved per pass, the
//! median pass by ratio is recorded, and the legs must agree on the best
//! cost — a mismatch means the parallel search diverged from the
//! sequential algorithms and the bench aborts. The result lands in
//! `BENCH_place.json` next to a human-readable summary on stdout.
//!
//! A second experiment scales the search to a large instance: the
//! portfolio search on a 100+-process toroidal `grid` (makespan in the
//! loop) with incremental evaluation — plan patching, lower-bound
//! emulation skips, reused report buffers — against the *same* portfolio
//! with [`PlaceTool::with_incremental`] off, i.e. the pre-incremental
//! path that rebuilds the model and emulates every candidate from
//! scratch. The trajectories are identical (the delta paths are exact
//! and the bound is admissible), so the placements must agree and the
//! ratio is pure per-candidate evaluation savings. The slow leg runs
//! once per invocation, the cheap leg `GRID_PASSES` times (median
//! reported) — the CI gate's best-of-5 rounds absorb machine noise.
//!
//! [`refine`]: PlaceTool::refine
//! [`anneal`]: PlaceTool::anneal

use std::time::{Duration, Instant};

use segbus_apps::generators::{chain, grid, GeneratorConfig};
use segbus_model::platform::Platform;
use segbus_model::time::ClockDomain;
use segbus_place::{PlaceTool, Placement};

const N: usize = 8;
const SEGMENTS: usize = 2;
/// Large-instance leg: a `GRID_W × GRID_H` toroidal mesh (≥ 100
/// processes) searched by the portfolio with makespan in the loop. Two
/// segments keep every family (including Kernighan–Lin, defined only
/// for bipartitions) in play.
const GRID_W: usize = 12;
const GRID_H: usize = 10;
const GRID_SEGMENTS: usize = 2;
const GRID_RESTARTS: usize = 1;
const GRID_ROUNDS: usize = 2;
/// Optimised-leg passes. The baseline (full rebuild per candidate) runs
/// once — it is ~5× slower, and the gate's best-of-5 rounds already
/// absorb machine noise — while the cheap leg is measured `GRID_PASSES`
/// times and reported by its median.
const GRID_PASSES: usize = 3;
/// Per-segment capacity. Besides being a realistic constraint, this
/// disables the Kernighan–Lin start (defined only for uncapacitated
/// bipartitions), keeping the two legs' task sets identical.
const CAPACITY: usize = 7;
const RESTARTS: usize = 8;
const THREADS: usize = 4;
const SEED: u64 = 42;
/// Full measurement passes; the median pass by ratio is recorded.
const PASSES: usize = 5;

fn main() {
    let app = chain(N, GeneratorConfig::default());
    let platform = Platform::builder("bench")
        .uniform_segments(SEGMENTS, ClockDomain::from_mhz(100.0))
        .build()
        .expect("valid platform");
    let tool = PlaceTool::new(&app, SEGMENTS)
        .with_makespan(&platform)
        .with_capacity(CAPACITY);
    // Must match `PlaceTool::best`'s internal budget: the cost-equality
    // assertion below fires if the two ever drift apart.
    let iterations = (20 * N * SEGMENTS).min(600);

    // Warm-up: fault in code paths and allocator state for both legs.
    {
        let _ = tool.refine(tool.greedy().allocation);
        let _ = tool.parallel(THREADS).with_restarts(1).best(SEED);
    }

    let mut timings = Vec::with_capacity(PASSES);
    let mut evaluations = 0u64;
    let mut emulations = 0u64;
    for pass in 0..PASSES {
        // Baseline leg: public sequential solvers, one private memo per
        // call — the only way to run this search before this change.
        let t = Instant::now();
        let mut seq = tool.refine(tool.greedy().allocation);
        for r in 0..RESTARTS as u64 {
            let s = SEED.wrapping_add(r.wrapping_mul(0x9e37_79b9));
            let a = tool.anneal(s, iterations);
            let p = tool.refine(a.allocation);
            if p.cost < seq.cost {
                seq = p;
            }
        }
        let baseline_time = t.elapsed();

        // Optimised leg: the same tasks on the parallel search, cold.
        let t = Instant::now();
        let search = tool.parallel(THREADS).with_restarts(RESTARTS);
        let par: Placement = search.best(SEED);
        let parallel_time = t.elapsed();

        assert_eq!(
            par.cost, seq.cost,
            "pass {pass}: parallel search diverged from the sequential one"
        );
        let stats = search.stats();
        assert_eq!(stats.duplicate_emulations, 0, "a candidate ran twice");
        evaluations = stats.evaluations;
        emulations = stats.emulations;

        let ratio = baseline_time.as_secs_f64() / parallel_time.as_secs_f64();
        println!("  pass {pass}: {ratio:.2}x");
        timings.push((baseline_time, parallel_time));
    }

    // Throughput is taken from the *fastest* optimised pass — the legs
    // are only a few milliseconds, so a single scheduler hiccup halves a
    // pass's apparent rate, and the minimum is the standard low-noise
    // estimator for such short measurements. The speedup stays the
    // median pass by ratio (interleaving keeps drift fair there).
    let fastest = timings
        .iter()
        .map(|t| t.1)
        .min()
        .expect("at least one pass");
    timings.sort_by(|a: &(Duration, Duration), b| {
        let ra = a.0.as_secs_f64() / a.1.as_secs_f64();
        let rb = b.0.as_secs_f64() / b.1.as_secs_f64();
        ra.partial_cmp(&rb).unwrap()
    });
    let (baseline_time, parallel_time) = timings[PASSES / 2];

    let baseline_ms = baseline_time.as_secs_f64() * 1e3;
    let total_ms = parallel_time.as_secs_f64() * 1e3;
    let runs = evaluations;
    let runs_per_sec = runs as f64 / fastest.as_secs_f64();
    let speedup = baseline_ms / total_ms;

    println!(
        "P5 — placement search ({THREADS} workers, {RESTARTS} restarts, \
         {N}-process chain on {SEGMENTS} segments)\n"
    );
    println!("  baseline  (sequential solvers, per-call private memo):");
    println!("      search in {baseline_ms:.1} ms");
    println!("  optimised (shared digest memo over the sweep pool):");
    println!(
        "      search in {total_ms:.1} ms = {runs_per_sec:.0} evaluations/s \
         ({runs} evaluations, {emulations} emulated)"
    );
    println!("  speedup: {speedup:.2}x");

    // ---- large-grid portfolio leg --------------------------------------
    // Incremental evaluation against the pre-incremental full-rebuild
    // path, on the identical portfolio trajectory (the delta paths are
    // exact, so the two runs visit the same candidates and must land on
    // the same placement).
    let grid_app = grid(
        GRID_W,
        GRID_H,
        GeneratorConfig {
            items_per_flow: 36,
            ticks_per_package: 40,
        },
    );
    let grid_platform = Platform::builder("bench-grid")
        .uniform_segments(GRID_SEGMENTS, ClockDomain::from_mhz(100.0))
        .build()
        .expect("valid platform");
    let grid_processes = grid_app.process_count();
    let fast_tool = PlaceTool::new(&grid_app, GRID_SEGMENTS).with_makespan(&grid_platform);
    let slow_tool = fast_tool.with_incremental(false);

    // Warm-up (optimised leg only — the baseline is too slow to warm).
    let _ = fast_tool
        .portfolio(1)
        .with_restarts(GRID_RESTARTS)
        .with_rounds(GRID_ROUNDS)
        .best(SEED);

    let t = Instant::now();
    let slow = slow_tool
        .portfolio(1)
        .with_restarts(GRID_RESTARTS)
        .with_rounds(GRID_ROUNDS)
        .best(SEED);
    let grid_baseline = t.elapsed();

    let mut grid_timings = Vec::with_capacity(GRID_PASSES);
    let mut grid_evaluations = 0u64;
    let mut grid_bound_skips = 0u64;
    let mut grid_plan_patches = 0u64;
    for pass in 0..GRID_PASSES {
        let t = Instant::now();
        let port = fast_tool
            .portfolio(1)
            .with_restarts(GRID_RESTARTS)
            .with_rounds(GRID_ROUNDS);
        let fast = port.best(SEED);
        let optimised_time = t.elapsed();

        assert_eq!(
            fast, slow,
            "grid pass {pass}: incremental evaluation diverged from the rebuild path"
        );
        let stats = port.stats();
        grid_evaluations = stats.search.evaluations;
        grid_bound_skips = stats.search.bound_skips;
        grid_plan_patches = stats.search.plan_patches;

        let ratio = grid_baseline.as_secs_f64() / optimised_time.as_secs_f64();
        println!("  grid pass {pass}: {ratio:.2}x");
        grid_timings.push(optimised_time);
    }
    let grid_fastest = *grid_timings.iter().min().expect("at least one pass");
    grid_timings.sort();
    let grid_optimised = grid_timings[GRID_PASSES / 2];
    let grid_baseline_ms = grid_baseline.as_secs_f64() * 1e3;
    let grid_total_ms = grid_optimised.as_secs_f64() * 1e3;
    let grid_speedup = grid_baseline_ms / grid_total_ms;
    // "Moves" are candidate evaluations the search asked for — answered
    // incrementally by patch+run, the bound, or the memo.
    let place_moves_per_sec = grid_evaluations as f64 / grid_fastest.as_secs_f64();

    println!(
        "\nP10 — portfolio on a {grid_processes}-process grid \
         ({GRID_SEGMENTS} segments, {GRID_ROUNDS} round(s))\n"
    );
    println!("  baseline  (full model rebuild + emulation per candidate):");
    println!("      search in {grid_baseline_ms:.1} ms");
    println!("  optimised (plan patching, lower-bound skips, delta digests):");
    println!(
        "      search in {grid_total_ms:.1} ms = {place_moves_per_sec:.0} moves/s \
         ({grid_evaluations} evaluations, {grid_bound_skips} bound-skipped, \
         {grid_plan_patches} plan patches)"
    );
    println!("  speedup: {grid_speedup:.2}x");

    let json = format!(
        "{{\n  \"runs\": {runs},\n  \"total_ms\": {total_ms:.3},\n  \"runs_per_sec\": {runs_per_sec:.1},\n  \"baseline_total_ms\": {baseline_ms:.3},\n  \"emulations\": {emulations},\n  \"speedup\": {speedup:.2},\n  \"threads\": {THREADS},\n  \"restarts\": {RESTARTS},\n  \"grid_processes\": {grid_processes},\n  \"grid_total_ms\": {grid_total_ms:.3},\n  \"grid_baseline_total_ms\": {grid_baseline_ms:.3},\n  \"grid_speedup\": {grid_speedup:.2},\n  \"grid_evaluations\": {grid_evaluations},\n  \"grid_bound_skips\": {grid_bound_skips},\n  \"grid_plan_patches\": {grid_plan_patches},\n  \"place_moves_per_sec\": {place_moves_per_sec:.1}\n}}\n",
    );
    std::fs::write("BENCH_place.json", &json).expect("write BENCH_place.json");
    println!("\nwrote BENCH_place.json");
}
