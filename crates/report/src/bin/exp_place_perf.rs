//! P5 — placement-search throughput: an emulation-in-the-loop `best`
//! search (greedy → refine plus `RESTARTS` annealing chains → refine) on
//! an 8-process chain over 2 capacity-limited segments, timed against
//! the pre-change single-threaded search.
//!
//! * **baseline** — exactly the search a user could compose before the
//!   parallel subsystem existed: the public sequential solvers
//!   ([`PlaceTool::greedy`]/[`refine`]/[`anneal`]), one call per restart.
//!   Every call owns a private evaluator, so candidates revisited across
//!   restarts — and the near-identical refine neighbourhoods every chain
//!   converges into — are re-emulated from scratch each time.
//! * **optimised** — [`PlaceTool::parallel`]: the same task set fanned
//!   out over 4 [`SweepPool`](segbus_core::SweepPool) workers with the
//!   shared allocation-digest memo, so across *all* tasks every distinct
//!   candidate is emulated exactly once. A fresh search is built per
//!   pass — the memo never carries over between measurements.
//!
//! The speedup is therefore algorithmic (deduplicated emulations) times
//! parallel (worker scaling); on a single-core machine the first factor
//! alone carries the result. The two legs are interleaved per pass, the
//! median pass by ratio is recorded, and the legs must agree on the best
//! cost — a mismatch means the parallel search diverged from the
//! sequential algorithms and the bench aborts. The result lands in
//! `BENCH_place.json` next to a human-readable summary on stdout.
//!
//! [`refine`]: PlaceTool::refine
//! [`anneal`]: PlaceTool::anneal

use std::time::{Duration, Instant};

use segbus_apps::generators::{chain, GeneratorConfig};
use segbus_model::platform::Platform;
use segbus_model::time::ClockDomain;
use segbus_place::{PlaceTool, Placement};

const N: usize = 8;
const SEGMENTS: usize = 2;
/// Per-segment capacity. Besides being a realistic constraint, this
/// disables the Kernighan–Lin start (defined only for uncapacitated
/// bipartitions), keeping the two legs' task sets identical.
const CAPACITY: usize = 7;
const RESTARTS: usize = 8;
const THREADS: usize = 4;
const SEED: u64 = 42;
/// Full measurement passes; the median pass by ratio is recorded.
const PASSES: usize = 5;

fn main() {
    let app = chain(N, GeneratorConfig::default());
    let platform = Platform::builder("bench")
        .uniform_segments(SEGMENTS, ClockDomain::from_mhz(100.0))
        .build()
        .expect("valid platform");
    let tool = PlaceTool::new(&app, SEGMENTS)
        .with_makespan(&platform)
        .with_capacity(CAPACITY);
    // Must match `PlaceTool::best`'s internal budget: the cost-equality
    // assertion below fires if the two ever drift apart.
    let iterations = (20 * N * SEGMENTS).min(600);

    // Warm-up: fault in code paths and allocator state for both legs.
    {
        let _ = tool.refine(tool.greedy().allocation);
        let _ = tool.parallel(THREADS).with_restarts(1).best(SEED);
    }

    let mut timings = Vec::with_capacity(PASSES);
    let mut evaluations = 0u64;
    let mut emulations = 0u64;
    for pass in 0..PASSES {
        // Baseline leg: public sequential solvers, one private memo per
        // call — the only way to run this search before this change.
        let t = Instant::now();
        let mut seq = tool.refine(tool.greedy().allocation);
        for r in 0..RESTARTS as u64 {
            let s = SEED.wrapping_add(r.wrapping_mul(0x9e37_79b9));
            let a = tool.anneal(s, iterations);
            let p = tool.refine(a.allocation);
            if p.cost < seq.cost {
                seq = p;
            }
        }
        let baseline_time = t.elapsed();

        // Optimised leg: the same tasks on the parallel search, cold.
        let t = Instant::now();
        let search = tool.parallel(THREADS).with_restarts(RESTARTS);
        let par: Placement = search.best(SEED);
        let parallel_time = t.elapsed();

        assert_eq!(
            par.cost, seq.cost,
            "pass {pass}: parallel search diverged from the sequential one"
        );
        let stats = search.stats();
        assert_eq!(stats.duplicate_emulations, 0, "a candidate ran twice");
        evaluations = stats.evaluations;
        emulations = stats.emulations;

        let ratio = baseline_time.as_secs_f64() / parallel_time.as_secs_f64();
        println!("  pass {pass}: {ratio:.2}x");
        timings.push((baseline_time, parallel_time));
    }

    // Throughput is taken from the *fastest* optimised pass — the legs
    // are only a few milliseconds, so a single scheduler hiccup halves a
    // pass's apparent rate, and the minimum is the standard low-noise
    // estimator for such short measurements. The speedup stays the
    // median pass by ratio (interleaving keeps drift fair there).
    let fastest = timings
        .iter()
        .map(|t| t.1)
        .min()
        .expect("at least one pass");
    timings.sort_by(|a: &(Duration, Duration), b| {
        let ra = a.0.as_secs_f64() / a.1.as_secs_f64();
        let rb = b.0.as_secs_f64() / b.1.as_secs_f64();
        ra.partial_cmp(&rb).unwrap()
    });
    let (baseline_time, parallel_time) = timings[PASSES / 2];

    let baseline_ms = baseline_time.as_secs_f64() * 1e3;
    let total_ms = parallel_time.as_secs_f64() * 1e3;
    let runs = evaluations;
    let runs_per_sec = runs as f64 / fastest.as_secs_f64();
    let speedup = baseline_ms / total_ms;

    println!(
        "P5 — placement search ({THREADS} workers, {RESTARTS} restarts, \
         {N}-process chain on {SEGMENTS} segments)\n"
    );
    println!("  baseline  (sequential solvers, per-call private memo):");
    println!("      search in {baseline_ms:.1} ms");
    println!("  optimised (shared digest memo over the sweep pool):");
    println!(
        "      search in {total_ms:.1} ms = {runs_per_sec:.0} evaluations/s \
         ({runs} evaluations, {emulations} emulated)"
    );
    println!("  speedup: {speedup:.2}x");

    let json = format!(
        "{{\n  \"runs\": {runs},\n  \"total_ms\": {total_ms:.3},\n  \"runs_per_sec\": {runs_per_sec:.1},\n  \"baseline_total_ms\": {baseline_ms:.3},\n  \"emulations\": {emulations},\n  \"speedup\": {speedup:.2},\n  \"threads\": {THREADS},\n  \"restarts\": {RESTARTS}\n}}\n",
    );
    std::fs::write("BENCH_place.json", &json).expect("write BENCH_place.json");
    println!("\nwrote BENCH_place.json");
}
