//! Ablation A6: producer flow-control policy.
fn main() {
    println!("A6 — producer release policy (flow control vs fire-and-forget)\n");
    print!("{}", segbus_report::release_policy_ablation());
}
