//! Regenerates the paper's Fig. 10: per-process progress timeline (CSV).
fn main() {
    println!("Fig. 10 — progress of each process, 3 segments, s = 36\n");
    print!("{}", segbus_report::fig10_timeline().to_csv());
}
