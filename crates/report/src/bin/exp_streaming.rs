//! Extension A12: pipelined streaming of successive application frames.
fn main() {
    println!("A12 — streaming throughput (frames pipelined through the waves)\n");
    print!("{}", segbus_report::streaming_throughput());
}
