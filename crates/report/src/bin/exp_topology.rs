//! Ablation A9: linear vs ring topology on hub-and-spokes workloads.
fn main() {
    println!("A9 — linear vs ring topology (hub-and-spokes mapping)\n");
    print!("{}", segbus_report::topology_comparison());
}
