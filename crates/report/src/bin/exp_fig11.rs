//! Regenerates the paper's Fig. 11: activity per platform element at
//! package sizes 18 and 36.
fn main() {
    println!("Fig. 11 — activity of platform elements, s = 18 vs s = 36\n");
    print!("{}", segbus_report::fig11_activity());
}
