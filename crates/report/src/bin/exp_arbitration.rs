//! Ablation A11: segment-arbitration policy under contention.
fn main() {
    println!("A11 — SA arbitration policy (three producers, one bus)\n");
    print!("{}", segbus_report::arbitration_comparison());
}
