//! Ablation A8: energy attribution per configuration (synthetic per-tick
//! weights; comparisons are the point, not absolute joules).
fn main() {
    println!("A8 — energy comparison across configurations\n");
    print!("{}", segbus_report::energy_comparison());
}
