//! Gantt-style CSV of every bus occupation in the 3-segment MP3 run
//! (feeds external plotting; companion to Figs. 10/11).
fn main() {
    let report = segbus_report::threeseg_report();
    print!("{}", segbus_core::gantt_csv(&report));
}
