//! Compares the paper's Fig. 9 one-, two- and three-segment configurations.
fn main() {
    println!("E7 — Fig. 9 platform configurations compared\n");
    print!("{}", segbus_report::segment_comparison());
}
