//! Regenerates the paper's §4 BU bottleneck analysis (UP / TCT / mean WP).
fn main() {
    println!("E6 — border-unit utilisation (paper: UP12=2304 TCT12=2336 WP~1)\n");
    print!("{}", segbus_report::bu_utilisation());
}
