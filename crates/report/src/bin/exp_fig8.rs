//! Regenerates the paper's Fig. 8: the MP3 decoder communication matrix.
fn main() {
    println!("Fig. 8 — communication matrix of the MP3 decoder (data items)\n");
    print!("{}", segbus_report::fig8_matrix().to_table());
}
