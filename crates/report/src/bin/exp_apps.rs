//! Ablation A7: the application library across segment counts, with
//! estimator-vs-reference accuracy for every combination.
fn main() {
    println!("A7 — application library (MP3 / JPEG / GSM) on 1-3 segments\n");
    print!("{}", segbus_report::application_library());
}
