//! Ablation A5: segment clock-frequency sensitivity.
fn main() {
    println!("A5 — segment clock scaling (CA fixed at 111 MHz)\n");
    print!(
        "{}",
        segbus_report::clock_sensitivity(&[0.5, 0.75, 1.0, 1.5, 2.0])
    );
}
