//! Ablation A3: processing-cost model (per-item / per-package / affine).
fn main() {
    println!("A3 — cost-model ablation (18 vs 36 item packages)\n");
    print!("{}", segbus_report::cost_model_ablation());
}
