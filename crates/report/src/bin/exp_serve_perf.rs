//! P6 — serve-tier throughput: the sharded non-blocking event core under
//! ≥1k concurrent loopback connections.
//!
//! `DRIVERS` client threads each hold `CONNS_PER_DRIVER` open sockets
//! (1024 connections total) against one in-process [`Server`] running the
//! event-loop core. Every connection pipelines `ROUNDS` windows of
//! `WINDOW` emulate requests drawn from a small distinct-job set, so
//! after the first pass over the set the server answers from the
//! in-memory report cache — the bench measures the serve tier (decode,
//! admission, batching, cache lookup, response write), not the emulator.
//!
//! All drivers connect first and rendezvous on a barrier; the timed
//! region covers only the request traffic. Throughput is wall-clock
//! requests/second over the measured pass; p50/p99 service latency comes
//! from the server's own fixed-bucket histogram via a final `stats`
//! request. The result lands in `BENCH_serve.json` (gated by
//! `scripts/bench_gate.sh`) next to a human-readable summary.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::Instant;

use segbus_serve::json::{self, Json};
use segbus_serve::{ServeOptions, Server};

const DRIVERS: usize = 16;
const CONNS_PER_DRIVER: usize = 64;
const CONNECTIONS: usize = DRIVERS * CONNS_PER_DRIVER;
/// Requests pipelined per connection per round (= the server window).
const WINDOW: usize = 8;
const ROUNDS: usize = 2;
/// Distinct jobs; every request beyond the first `DISTINCT_JOBS` is a
/// cache hit.
const DISTINCT_JOBS: u64 = 32;

const DEMO: &str = "application a {\n  process X initial;\n  process Y final;\n  flow X -> Y { items 72; order 1; ticks 100; }\n}\nplatform p {\n  segment S0 { freq_mhz 100; hosts X; }\n  segment S1 { freq_mhz 100; hosts Y; }\n}\n";

fn emulate_line(id: u64, frames: u64) -> String {
    let mut src = String::new();
    json::write_str(&mut src, DEMO);
    format!("{{\"id\": {id}, \"cmd\": \"emulate\", \"source\": {src}, \"frames\": {frames}}}\n")
}

fn read_ok(reader: &mut BufReader<TcpStream>) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("response read");
    assert!(!line.is_empty(), "server closed a bench connection");
    let v = json::parse(&line).expect("response parses");
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "bench request failed: {line}"
    );
}

/// Drive `conns` connections through one full pass; returns the number
/// of responses read. Panics on any non-ok response.
fn drive(conns: &mut [(TcpStream, BufReader<TcpStream>)], driver: u64) -> u64 {
    let mut answered = 0u64;
    for round in 0..ROUNDS as u64 {
        for (c, (stream, _)) in conns.iter_mut().enumerate() {
            let mut burst = String::new();
            for w in 0..WINDOW as u64 {
                // Per-connection request counter; `c * 16 % 32` alternates
                // by connection parity, so the ids sweep the whole
                // distinct-job set.
                let idx = c as u64 * (ROUNDS * WINDOW) as u64 + round * WINDOW as u64 + w;
                let id = (driver << 32) | idx;
                burst.push_str(&emulate_line(id, 1 + idx % DISTINCT_JOBS));
            }
            stream.write_all(burst.as_bytes()).expect("request write");
        }
        for (_, reader) in conns.iter_mut() {
            for _ in 0..WINDOW {
                read_ok(reader);
                answered += 1;
            }
        }
    }
    answered
}

fn stat(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn main() {
    let mut server = Server::start(ServeOptions {
        port: 0,
        threads: 2,
        cache_capacity: 4 * DISTINCT_JOBS as usize,
        window: WINDOW,
        // Room for every connection's full window: the bench measures
        // throughput, not the shed path.
        max_in_flight: CONNECTIONS * WINDOW,
        ..ServeOptions::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // Warm-up: run every distinct job once so the measured pass is all
    // cache hits, and fault in the whole serve path.
    {
        let mut stream = TcpStream::connect(addr).expect("warm-up connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut burst = String::new();
        for frames in 1..=DISTINCT_JOBS {
            burst.push_str(&emulate_line(u64::MAX - frames, frames));
        }
        stream.write_all(burst.as_bytes()).expect("warm-up write");
        for _ in 0..DISTINCT_JOBS {
            read_ok(&mut reader);
        }
    }

    let barrier = Barrier::new(DRIVERS + 1);
    let (answered, elapsed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..DRIVERS as u64)
            .map(|driver| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut conns: Vec<_> = (0..CONNS_PER_DRIVER)
                        .map(|_| {
                            let s = TcpStream::connect(addr).expect("bench connect");
                            s.set_nodelay(true).expect("nodelay");
                            let r = BufReader::new(s.try_clone().expect("clone"));
                            (s, r)
                        })
                        .collect();
                    barrier.wait(); // all 1024 connections open
                    drive(&mut conns, driver)
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        let answered: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        (answered, t0.elapsed())
    });

    let mut stats_conn = TcpStream::connect(addr).expect("stats connect");
    stats_conn
        .write_all(b"{\"id\": 1, \"cmd\": \"stats\"}\n")
        .expect("stats write");
    let mut line = String::new();
    BufReader::new(&stats_conn)
        .read_line(&mut line)
        .expect("stats read");
    let stats = json::parse(&line).expect("stats parses");
    server.shutdown();

    let expected = (CONNECTIONS * ROUNDS * WINDOW) as u64;
    assert_eq!(answered, expected, "lost responses");
    assert_eq!(stat(&stats, "sheds"), 0, "bench traffic was shed");

    let reqs_per_sec = answered as f64 / elapsed.as_secs_f64();
    let total_ms = elapsed.as_secs_f64() * 1e3;
    let p50_us = stat(&stats, "p50_us");
    let p99_us = stat(&stats, "p99_us");
    let hits = stat(&stats, "hits");

    println!(
        "P6 — serve tier ({CONNECTIONS} connections over {DRIVERS} drivers, \
         window {WINDOW}, {DISTINCT_JOBS} distinct jobs)\n"
    );
    println!("  {answered} requests in {total_ms:.1} ms = {reqs_per_sec:.0} reqs/s");
    println!("  service latency: p50 {p50_us} us, p99 {p99_us} us ({hits} cache hits)");

    let json = format!(
        "{{\n  \"serve_connections\": {CONNECTIONS},\n  \"serve_requests\": {answered},\n  \"serve_total_ms\": {total_ms:.3},\n  \"serve_reqs_per_sec\": {reqs_per_sec:.1},\n  \"serve_p50_us\": {p50_us},\n  \"serve_p99_us\": {p99_us},\n  \"serve_cache_hits\": {hits}\n}}\n",
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
