//! Regenerates the paper's §4 three-segment results block (experiment E2).
fn main() {
    let report = segbus_report::threeseg_report();
    println!("Three Segments configuration (Fig. 9), package size 36\n");
    for (name, start, end) in segbus_report::e2_highlights(&report) {
        if start == end {
            println!("{name} at {}ps", start.0);
        } else {
            println!("{name}, Start Time = {}ps, End Time = {}ps", start.0, end.0);
        }
    }
    println!();
    print!("{}", report.paper_style());
    println!("\n--- paper vs measured ---");
    print!("{}", segbus_report::e2_comparison());
}
