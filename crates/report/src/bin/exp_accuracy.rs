//! Regenerates the paper's §4 accuracy analysis: estimated (emulator) vs
//! actual (reference simulator) execution times for the three experiments.
fn main() {
    println!("E5 — estimation accuracy (paper: ~95 %, ~93 %, just below 95 %)\n");
    print!("{}", segbus_report::accuracy_table());
}
