//! P1 — engine throughput: a 256-run package-size × clock sweep on the
//! MP3 decoder, timing three engine generations against each other.
//!
//! * **baseline** — exactly the pre-optimisation sweep shape: every row
//!   builds its platform/PSM from scratch and runs the vendored
//!   [`ReferenceEmulator`] (the seed engine, binary-heap queue, all
//!   lookup tables rebuilt per run), sequentially.
//! * **interpreter** — the general event-loop interpreter with every
//!   shipped optimisation: one [`EnginePlan`] compiled per distinct
//!   configuration and reused across the repetitions by a pool worker's
//!   persistent engine (indexed calendar queue, scratch state reset
//!   between runs), fanned out on [`SweepPool`].
//! * **fast** — the specialised core (`segbus_core::fast`, the default
//!   engine): same plan/pool harness as the interpreter leg, with the
//!   monomorphised arbitration/release loop, SoA scratch and precomputed
//!   schedule slices.
//!
//! The three legs are interleaved in rounds so machine-speed drift hits
//! all equally, the whole sweep is repeated for a handful of passes and
//! the median pass is recorded (one pass is only ~30 ms per leg — short
//! enough for a scheduler hiccup to swing the ratio), and every triple of
//! reports is asserted identical — the harness doubles as a coarse
//! differential test. The result lands in `BENCH_engine.json` next to a
//! human-readable summary on stdout; `runs_per_sec` remains the
//! interpreter number (comparable with the file's history) and
//! `fast_runs_per_sec` is the fast core, both gated by
//! `scripts/bench_gate.sh`.

use std::time::{Duration, Instant};

use segbus_apps::mp3;
use segbus_core::{
    EmulatorConfig, EngineKind, EnginePlan, QueueKind, ReferenceEmulator, SweepPool,
};
use segbus_model::mapping::Psm;
use segbus_model::time::ClockDomain;

const SIZES: [u32; 4] = [9, 18, 36, 72];
const FACTORS: [f64; 8] = [0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5];
const REPS: usize = 8;
/// Distinct configurations interleaved per timing round.
const ROUND: usize = 4;
/// Full-sweep measurement passes; the median pass is recorded.
const PASSES: usize = 5;

fn build_psm(size: u32, factor: f64) -> Psm {
    let platform = segbus_model::platform::Platform::builder("scaled")
        .package_size(size)
        .ca_clock(ClockDomain::from_mhz(111.0))
        .segment("S1", ClockDomain::from_mhz(91.0 * factor))
        .segment("S2", ClockDomain::from_mhz(98.0 * factor))
        .segment("S3", ClockDomain::from_mhz(89.0 * factor))
        .build()
        .expect("valid platform");
    Psm::new(
        platform,
        mp3::mp3_decoder(),
        mp3::three_segment_allocation(),
    )
    .expect("valid system")
}

fn main() {
    let grid: Vec<(u32, f64)> = SIZES
        .iter()
        .flat_map(|&s| FACTORS.iter().map(move |&f| (s, f)))
        .collect();
    let runs = grid.len() * REPS;

    let heap_cfg = EmulatorConfig {
        queue: QueueKind::BinaryHeap,
        ..EmulatorConfig::default()
    };
    let interp_pool = SweepPool::new(EmulatorConfig {
        engine: EngineKind::Interpreter,
        ..EmulatorConfig::default()
    });
    let fast_pool = SweepPool::new(EmulatorConfig {
        engine: EngineKind::Fast,
        ..EmulatorConfig::default()
    });

    // Warm-up pass so no leg pays first-touch costs.
    {
        let psm = build_psm(SIZES[0], FACTORS[0]);
        let _ = ReferenceEmulator::new(heap_cfg).run(&psm);
        let _ = interp_pool.sweep(std::slice::from_ref(&psm));
        let _ = fast_pool.sweep(std::slice::from_ref(&psm));
    }

    let mut timings = Vec::with_capacity(PASSES);
    for pass in 0..PASSES {
        let mut baseline = Vec::with_capacity(runs);
        let mut interp = Vec::with_capacity(runs);
        let mut fast = Vec::with_capacity(runs);
        let mut baseline_time = Duration::ZERO;
        let mut interp_time = Duration::ZERO;
        let mut fast_time = Duration::ZERO;

        for round in grid.chunks(ROUND) {
            // Baseline leg: the pre-change harness rebuilt the PSM for
            // every row and ran a fresh emulator on it.
            let t = Instant::now();
            for &(s, f) in round {
                for _ in 0..REPS {
                    let psm = build_psm(s, f);
                    baseline.push(ReferenceEmulator::new(heap_cfg).run(&psm));
                }
            }
            baseline_time += t.elapsed();

            // Interpreter leg: each pool job compiles one plan and reuses
            // it (and the worker's engine scratch) for all repetitions.
            let t = Instant::now();
            let reports = interp_pool.sweep_with(round, |engine, &(s, f)| {
                let psm = build_psm(s, f);
                let plan = EnginePlan::new(&psm);
                (0..REPS)
                    .map(|_| engine.run_plan(&plan, 1))
                    .collect::<Vec<_>>()
            });
            interp_time += t.elapsed();
            interp.extend(reports.into_iter().flatten());

            // Fast leg: identical harness, specialised core.
            let t = Instant::now();
            let reports = fast_pool.sweep_with(round, |engine, &(s, f)| {
                let psm = build_psm(s, f);
                let plan = EnginePlan::new(&psm);
                (0..REPS)
                    .map(|_| engine.run_plan(&plan, 1))
                    .collect::<Vec<_>>()
            });
            fast_time += t.elapsed();
            fast.extend(reports.into_iter().flatten());
        }

        assert_eq!(baseline.len(), runs);
        for (i, ((a, b), c)) in baseline.iter().zip(&interp).zip(&fast).enumerate() {
            assert_eq!(a.makespan, b.makespan, "run {i} diverged (interpreter)");
            assert_eq!(a.sas, b.sas, "run {i} diverged (interpreter)");
            assert_eq!(a.ca, b.ca, "run {i} diverged (interpreter)");
            assert_eq!(a.bus, b.bus, "run {i} diverged (interpreter)");
            assert_eq!(a.fus, b.fus, "run {i} diverged (interpreter)");
            assert_eq!(b.makespan, c.makespan, "run {i} diverged (fast)");
            assert_eq!(b.sas, c.sas, "run {i} diverged (fast)");
            assert_eq!(b.ca, c.ca, "run {i} diverged (fast)");
            assert_eq!(b.bus, c.bus, "run {i} diverged (fast)");
            assert_eq!(b.fus, c.fus, "run {i} diverged (fast)");
        }

        let ratio = interp_time.as_secs_f64() / fast_time.as_secs_f64();
        println!("  pass {pass}: fast {ratio:.2}x over interpreter");
        timings.push((baseline_time, interp_time, fast_time));
    }

    // Median pass by fast-over-interpreter ratio — robust to a scheduler
    // hiccup landing in any leg of a single pass.
    timings.sort_by(|a, b| {
        let ra = a.1.as_secs_f64() / a.2.as_secs_f64();
        let rb = b.1.as_secs_f64() / b.2.as_secs_f64();
        ra.partial_cmp(&rb).unwrap()
    });
    let (baseline_time, interp_time, fast_time) = timings[PASSES / 2];

    let baseline_ms = baseline_time.as_secs_f64() * 1e3;
    let total_ms = interp_time.as_secs_f64() * 1e3;
    let fast_ms = fast_time.as_secs_f64() * 1e3;
    let baseline_rps = runs as f64 / (baseline_ms / 1e3);
    let runs_per_sec = runs as f64 / (total_ms / 1e3);
    let fast_rps = runs as f64 / (fast_ms / 1e3);
    let speedup = runs_per_sec / baseline_rps;
    let fast_speedup = fast_rps / runs_per_sec;

    println!("P1 — engine throughput ({} workers)\n", fast_pool.threads());
    println!("  baseline    (per-row PSM build, reference engine, heap queue):");
    println!("      {runs} runs in {baseline_ms:.1} ms = {baseline_rps:.0} runs/s");
    println!("  interpreter (plan reuse, indexed queue, sweep pool):");
    println!("      {runs} runs in {total_ms:.1} ms = {runs_per_sec:.0} runs/s");
    println!("  fast        (monomorphised core, SoA scratch, sweep pool):");
    println!("      {runs} runs in {fast_ms:.1} ms = {fast_rps:.0} runs/s");
    println!("  interpreter over baseline: {speedup:.2}x");
    println!("  fast over interpreter:     {fast_speedup:.2}x");

    let json = format!(
        "{{\n  \"runs\": {runs},\n  \"total_ms\": {total_ms:.3},\n  \"runs_per_sec\": {runs_per_sec:.1},\n  \"fast_total_ms\": {fast_ms:.3},\n  \"fast_runs_per_sec\": {fast_rps:.1},\n  \"fast_speedup\": {fast_speedup:.2},\n  \"baseline_total_ms\": {baseline_ms:.3},\n  \"baseline_runs_per_sec\": {baseline_rps:.1},\n  \"speedup\": {speedup:.2},\n  \"threads\": {}\n}}\n",
        fast_pool.threads()
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json");
}
