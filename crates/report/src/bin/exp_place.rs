//! Ablation A1: PlaceTool allocations vs the paper's hand allocation.
fn main() {
    println!("A1 — placement quality on the 3-segment platform\n");
    print!("{}", segbus_report::placement_comparison());
    println!("\nA1b — two-segment placement (incl. Kernighan-Lin)\n");
    print!("{}", segbus_report::placement_two_segments());
}
