//! The experiment implementations (see the crate docs for the index).
//!
//! Paper reference values are kept next to the code that reproduces them so
//! EXPERIMENTS.md and the binaries can print paper-vs-measured columns.

use segbus_apps::mp3;
use segbus_core::config::ProducerRelease;
use segbus_core::{Emulator, EmulatorConfig};
use segbus_model::ids::ProcessId;
use segbus_model::mapping::Psm;
use segbus_model::matrix::CommMatrix;
use segbus_model::psdf::CostModel;
use segbus_model::time::Picos;
use segbus_place::{Objective, PlaceTool};
use segbus_rtl::RtlSimulator;

use crate::table::Table;

/// Paper §4: estimated execution times (µs) for the three experiments.
pub const PAPER_ESTIMATED_US: [f64; 3] = [489.79, 560.16, 540.4];
/// Paper §4: actual (real platform) execution times (µs).
pub const PAPER_ACTUAL_US: [f64; 3] = [515.2, 600.02, 570.12];

/// E1 / Fig. 8 — the communication matrix of the MP3 decoder.
pub fn fig8_matrix() -> CommMatrix {
    CommMatrix::from_application(&mp3::mp3_decoder())
}

/// E2 — the full 3-segment emulation print-out, paper style.
pub fn threeseg_report() -> segbus_core::EmulationReport {
    Emulator::new(EmulatorConfig::traced()).run(&mp3::three_segment_psm())
}

/// E3 / Fig. 10 — `(process, start µs, end µs)` timeline rows.
pub fn fig10_timeline() -> Table {
    let report = threeseg_report();
    let mut t = Table::new(["process", "start_us", "end_us"]);
    for (p, start, end) in report.timeline() {
        t.row([
            p.to_string(),
            format!("{:.3}", start.as_micros_f64()),
            format!("{:.3}", end.as_micros_f64()),
        ]);
    }
    t
}

/// E4 / Fig. 11 — per-element activity (busy ticks and TCT) at package
/// sizes 18 and 36.
pub fn fig11_activity() -> Table {
    let r36 = Emulator::default().run(&mp3::three_segment_psm());
    let r18 = Emulator::default().run(
        &mp3::three_segment_psm()
            .with_package_size(18)
            .expect("valid size"),
    );
    let mut t = Table::new([
        "element",
        "busy_ticks_s18",
        "busy_ticks_s36",
        "tct_s18",
        "tct_s36",
    ]);
    for i in 0..r36.sas.len() {
        t.row([
            format!("SA{}", i + 1),
            r18.sas[i].busy_ticks.to_string(),
            r36.sas[i].busy_ticks.to_string(),
            r18.sas[i].tct.to_string(),
            r36.sas[i].tct.to_string(),
        ]);
    }
    t.row([
        "CA".to_string(),
        r18.ca.busy_ticks.to_string(),
        r36.ca.busy_ticks.to_string(),
        r18.ca.tct.to_string(),
        r36.ca.tct.to_string(),
    ]);
    for i in 0..r36.bus.len() {
        t.row([
            format!("BU{}{}", i + 1, i + 2),
            r18.bus[i].tct.to_string(),
            r36.bus[i].tct.to_string(),
            r18.bus[i].tct.to_string(),
            r36.bus[i].tct.to_string(),
        ]);
    }
    t
}

/// One row of the accuracy experiment.
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    /// Configuration label.
    pub config: &'static str,
    /// Estimated execution time (µs) from the emulator.
    pub estimated_us: f64,
    /// "Actual" execution time (µs) from the reference simulator.
    pub actual_us: f64,
    /// `estimated / actual`.
    pub accuracy: f64,
    /// The paper's estimated value (µs).
    pub paper_estimated_us: f64,
    /// The paper's actual value (µs).
    pub paper_actual_us: f64,
}

impl AccuracyRow {
    /// The paper's accuracy for this configuration.
    pub fn paper_accuracy(&self) -> f64 {
        self.paper_estimated_us / self.paper_actual_us
    }
}

/// E5 — estimated vs actual for the paper's three experiments.
pub fn accuracy_rows() -> Vec<AccuracyRow> {
    let configs: [(&'static str, Psm); 3] = [
        ("3seg s=36 (Fig. 9)", mp3::three_segment_psm()),
        (
            "3seg s=18",
            mp3::three_segment_psm()
                .with_package_size(18)
                .expect("valid"),
        ),
        ("3seg s=36 P9 on seg3", mp3::three_segment_p9_moved_psm()),
    ];
    configs
        .into_iter()
        .enumerate()
        .map(|(i, (config, psm))| {
            let est = Emulator::default().run(&psm).execution_time();
            let act = RtlSimulator::default()
                .run(&psm)
                .expect("reference run completes")
                .execution_time();
            AccuracyRow {
                config,
                estimated_us: est.as_micros_f64(),
                actual_us: act.as_micros_f64(),
                accuracy: est.0 as f64 / act.0 as f64,
                paper_estimated_us: PAPER_ESTIMATED_US[i],
                paper_actual_us: PAPER_ACTUAL_US[i],
            }
        })
        .collect()
}

/// Render [`accuracy_rows`] with paper-vs-measured columns.
pub fn accuracy_table() -> Table {
    let mut t = Table::new([
        "config",
        "est_us",
        "act_us",
        "accuracy",
        "paper_est_us",
        "paper_act_us",
        "paper_accuracy",
    ]);
    for r in accuracy_rows() {
        t.row([
            r.config.to_string(),
            format!("{:.2}", r.estimated_us),
            format!("{:.2}", r.actual_us),
            format!("{:.1}%", r.accuracy * 100.0),
            format!("{:.2}", r.paper_estimated_us),
            format!("{:.2}", r.paper_actual_us),
            format!("{:.1}%", r.paper_accuracy() * 100.0),
        ]);
    }
    t
}

/// E6 — BU bottleneck analysis: `(BU, UP, TCT, W̄P)` per border unit.
/// Paper values at s = 36: UP12 = 2304, TCT12 = 2336, W̄P ≈ 1;
/// UP23 = 144, TCT23 = 146.
pub fn bu_utilisation() -> Table {
    let report = threeseg_report();
    let mut t = Table::new(["bu", "UP_ticks", "TCT_ticks", "avg_WP_ticks"]);
    for (bu, up, tct, wp) in report.bu_analysis() {
        t.row([
            bu.to_string(),
            up.to_string(),
            tct.to_string(),
            format!("{wp:.2}"),
        ]);
    }
    t
}

/// E7 — the Fig. 9 configurations compared (the paper defines all three
/// but prints only the 3-segment results).
pub fn segment_comparison() -> Table {
    let configs = [
        ("1 segment", mp3::one_segment_psm()),
        ("2 segments", mp3::two_segment_psm()),
        ("3 segments", mp3::three_segment_psm()),
    ];
    let mut t = Table::new(["config", "est_us", "inter_seg_packages", "ca_grants"]);
    for (name, psm) in configs {
        let r = Emulator::default().run(&psm);
        t.row([
            name.to_string(),
            format!("{:.2}", r.execution_time().as_micros_f64()),
            r.inter_segment_packages().to_string(),
            r.ca.grants.to_string(),
        ]);
    }
    t
}

/// A1 — placement quality: the Fig. 9 hand allocation vs PlaceTool
/// (composed heuristics and the Kernighan–Lin bipartitioner collapsed to
/// three segments is not meaningful, so KL is reported on the two-segment
/// platform in `placement_two_segments`) and naive baselines.
pub fn placement_comparison() -> Table {
    let app = mp3::mp3_decoder();
    let tool = PlaceTool::new(&app, 3).with_objective(Objective::Packages(36));

    let hand = mp3::three_segment_allocation();
    let rr = segbus_apps::generators::round_robin_allocation(&app, 3);
    let block = segbus_apps::generators::block_allocation(&app, 3);
    let best = tool.best(42).allocation;

    let platform = segbus_model::platform::paper_three_segment_platform();
    let mut t = Table::new(["allocation", "package_cut", "est_us"]);
    for (name, alloc) in [
        ("Fig. 9 (hand)", hand),
        ("PlaceTool best", best),
        ("block", block),
        ("round-robin", rr),
    ] {
        let cut = alloc.package_cut(&app, 36);
        let psm = Psm::new(platform.clone(), app.clone(), alloc).expect("valid");
        let r = Emulator::default().run(&psm);
        t.row([
            name.to_string(),
            cut.to_string(),
            format!("{:.2}", r.execution_time().as_micros_f64()),
        ]);
    }
    t
}

/// A1b — two-segment placement: the paper's Fig. 9 hand bipartition vs
/// Kernighan–Lin vs the composed PlaceTool solver.
pub fn placement_two_segments() -> Table {
    let app = mp3::mp3_decoder();
    let tool = PlaceTool::new(&app, 2).with_objective(Objective::Packages(36));
    let platform = segbus_model::platform::Platform::builder("SBP-2seg")
        .package_size(36)
        .ca_clock(segbus_model::time::ClockDomain::from_mhz(111.0))
        .segment("Segment1", segbus_model::time::ClockDomain::from_mhz(91.0))
        .segment("Segment2", segbus_model::time::ClockDomain::from_mhz(98.0))
        .build()
        .expect("valid");
    let hand = mp3::two_segment_psm().allocation().clone();
    let kl = segbus_place::kernighan_lin(&app, Objective::Packages(36), 8).allocation;
    let best = tool.best(7).allocation;
    let mut t = Table::new(["allocation", "package_cut", "est_us"]);
    for (name, alloc) in [
        ("Fig. 9 (hand)", hand),
        ("Kernighan-Lin", kl),
        ("PlaceTool best", best),
    ] {
        let cut = alloc.package_cut(&app, 36);
        let psm = Psm::new(platform.clone(), app.clone(), alloc).expect("valid");
        let r = Emulator::default().run(&psm);
        t.row([
            name.to_string(),
            cut.to_string(),
            format!("{:.2}", r.execution_time().as_micros_f64()),
        ]);
    }
    t
}

/// A2 — package-size sweep on the 3-segment configuration.
pub fn package_size_sweep(sizes: &[u32]) -> Table {
    let mut t = Table::new(["package_size", "est_us", "packages", "bu12_tct"]);
    let psms: Vec<Psm> = sizes
        .iter()
        .map(|&s| {
            mp3::three_segment_psm()
                .with_package_size(s)
                .expect("valid")
        })
        .collect();
    let reports = segbus_core::SweepPool::new(EmulatorConfig::default()).sweep(&psms);
    for ((&s, psm), r) in sizes.iter().zip(&psms).zip(&reports) {
        t.row([
            s.to_string(),
            format!("{:.2}", r.execution_time().as_micros_f64()),
            psm.application().total_packages(s).to_string(),
            r.bus[0].tct.to_string(),
        ]);
    }
    t
}

/// The default sweep sizes (divisors of the MP3 item counts where
/// possible; 72 and 144 pad the 540-item flows).
pub const SWEEP_SIZES: [u32; 7] = [6, 9, 12, 18, 36, 72, 144];

/// A3 — cost-model ablation at package sizes 18 and 36.
pub fn cost_model_ablation() -> Table {
    let models: [(&str, CostModel); 3] = [
        ("per_item(36)", CostModel::per_item(36).unwrap()),
        ("per_package", CostModel::PerPackage),
        ("affine(base=40;ref=36)", CostModel::affine(40, 36).unwrap()),
    ];
    let mut t = Table::new(["cost_model", "est_us_s36", "est_us_s18", "ratio"]);
    for (name, cm) in models {
        let mut app = mp3::mp3_decoder();
        app.set_cost_model(cm);
        let platform = segbus_model::platform::paper_three_segment_platform();
        let alloc = mp3::three_segment_allocation();
        let p36 = Psm::new(platform.clone(), app.clone(), alloc.clone()).expect("valid");
        let p18 = p36.with_package_size(18).expect("valid");
        let t36 = Emulator::default()
            .run(&p36)
            .execution_time()
            .as_micros_f64();
        let t18 = Emulator::default()
            .run(&p18)
            .execution_time()
            .as_micros_f64();
        t.row([
            name.to_string(),
            format!("{t36:.2}"),
            format!("{t18:.2}"),
            format!("{:.3}", t18 / t36),
        ]);
    }
    t
}

/// A5 — clock-frequency sensitivity: scale every segment clock by a factor
/// while the CA stays at 111 MHz.
pub fn clock_sensitivity(factors: &[f64]) -> Table {
    let mut t = Table::new(["segment_clock_factor", "est_us"]);
    let psms: Vec<Psm> = factors
        .iter()
        .map(|&f| {
            let platform = segbus_model::platform::Platform::builder("scaled")
                .package_size(36)
                .ca_clock(segbus_model::time::ClockDomain::from_mhz(111.0))
                .segment("S1", segbus_model::time::ClockDomain::from_mhz(91.0 * f))
                .segment("S2", segbus_model::time::ClockDomain::from_mhz(98.0 * f))
                .segment("S3", segbus_model::time::ClockDomain::from_mhz(89.0 * f))
                .build()
                .expect("valid");
            Psm::new(
                platform,
                mp3::mp3_decoder(),
                mp3::three_segment_allocation(),
            )
            .expect("valid")
        })
        .collect();
    let reports = segbus_core::SweepPool::new(EmulatorConfig::default()).sweep(&psms);
    for (&f, r) in factors.iter().zip(&reports) {
        t.row([
            format!("{f:.2}"),
            format!("{:.2}", r.execution_time().as_micros_f64()),
        ]);
    }
    t
}

/// A6 — producer flow-control ablation: send-and-wait-acknowledge
/// (default) vs fire-and-forget.
pub fn release_policy_ablation() -> Table {
    let configs = [
        ("3seg s=36", mp3::three_segment_psm()),
        ("3seg P9 on seg3", mp3::three_segment_p9_moved_psm()),
    ];
    let mut t = Table::new(["config", "after_delivery_us", "after_local_us", "speedup"]);
    for (name, psm) in configs {
        let slow = Emulator::new(EmulatorConfig {
            producer_release: ProducerRelease::AfterDelivery,
            ..EmulatorConfig::default()
        })
        .run(&psm)
        .execution_time();
        let fast = Emulator::new(EmulatorConfig {
            producer_release: ProducerRelease::AfterLocalPhase,
            ..EmulatorConfig::default()
        })
        .run(&psm)
        .execution_time();
        t.row([
            name.to_string(),
            format!("{:.2}", slow.as_micros_f64()),
            format!("{:.2}", fast.as_micros_f64()),
            format!("{:.3}", slow.0 as f64 / fast.0 as f64),
        ]);
    }
    t
}

/// A7 — the application library (future work: "more application models"):
/// every library app on 1–3 segments, with estimator-vs-reference accuracy.
pub fn application_library() -> Table {
    let mut t = Table::new(["application", "segments", "est_us", "act_us", "accuracy"]);
    for app in [
        segbus_apps::mp3::mp3_decoder(),
        segbus_apps::library::jpeg_encoder(),
        segbus_apps::library::gsm_encoder(),
        segbus_apps::library::sdr_receiver(),
        segbus_apps::library::video_encoder(),
    ] {
        for segments in 1..=3usize {
            let psm = segbus_apps::library::on_paper_platform(app.clone(), segments);
            let est = Emulator::default().run(&psm).execution_time();
            let act = RtlSimulator::default()
                .run(&psm)
                .expect("reference run completes")
                .execution_time();
            t.row([
                app.name().to_string(),
                segments.to_string(),
                format!("{:.2}", est.as_micros_f64()),
                format!("{:.2}", act.as_micros_f64()),
                format!("{:.1}%", 100.0 * est.0 as f64 / act.0 as f64),
            ]);
        }
    }
    t
}

/// A8 — energy attribution per configuration (the paper's conclusion:
/// early configuration decisions "improve power consumption up to some
/// extent"). Synthetic per-tick weights; comparisons, not absolutes.
pub fn energy_comparison() -> Table {
    use segbus_core::{estimate_energy, EnergyModel};
    let model = EnergyModel::default();
    let configs = [
        ("1 segment", mp3::one_segment_psm()),
        ("2 segments", mp3::two_segment_psm()),
        ("3 segments", mp3::three_segment_psm()),
        (
            "3 seg s=18",
            mp3::three_segment_psm()
                .with_package_size(18)
                .expect("valid"),
        ),
        ("3 seg P9 moved", mp3::three_segment_p9_moved_psm()),
    ];
    let mut t = Table::new(["config", "total_uj", "compute_uj", "comm_fraction"]);
    for (name, psm) in configs {
        let r = Emulator::default().run(&psm);
        let e = estimate_energy(&r, &model);
        let compute: f64 = e.fu_pj.iter().sum::<f64>() / 1e6;
        t.row([
            name.to_string(),
            format!("{:.2}", e.total_uj()),
            format!("{compute:.2}"),
            format!("{:.1}%", e.communication_fraction() * 100.0),
        ]);
    }
    t
}

/// A9 — topology extension: linear vs ring on a hub-and-spokes workload
/// (source and sink on segment 1, workers spread over the others). The
/// ring's wrap-around unit turns the two long return paths into single
/// hops.
pub fn topology_comparison() -> Table {
    use segbus_apps::generators::{diamond, GeneratorConfig};
    use segbus_model::ids::SegmentId;
    use segbus_model::mapping::Allocation;

    let mut t = Table::new(["workers", "linear_us", "ring_us", "ring_speedup"]);
    for workers in [3usize, 5, 7] {
        let segments = workers + 1;
        let app = diamond(
            workers,
            GeneratorConfig {
                items_per_flow: 4 * 36,
                ticks_per_package: 150,
            },
        );
        // SRC (id 0) and SINK (last id) on segment 0; worker i on segment i+1.
        let mut alloc = Allocation::new(segments);
        alloc.assign(ProcessId(0), SegmentId(0));
        alloc.assign(ProcessId(app.process_count() as u32 - 1), SegmentId(0));
        for w in 0..workers {
            alloc.assign(ProcessId(w as u32 + 1), SegmentId(w as u16 + 1));
        }
        let linear = Psm::new(
            segbus_apps::generators::uniform_platform(segments, 36),
            app.clone(),
            alloc.clone(),
        )
        .expect("valid");
        let ring = Psm::new(
            segbus_apps::generators::ring_platform(segments, 36),
            app,
            alloc,
        )
        .expect("valid");
        let tl = Emulator::default().run(&linear).execution_time();
        let tr = Emulator::default().run(&ring).execution_time();
        t.row([
            workers.to_string(),
            format!("{:.2}", tl.as_micros_f64()),
            format!("{:.2}", tr.as_micros_f64()),
            format!("{:.3}", tl.0 as f64 / tr.0 as f64),
        ]);
    }
    t
}

/// A11 — SA arbitration-policy ablation on a contended segment: three
/// producers flood one sink; the policy decides who finishes first.
pub fn arbitration_comparison() -> Table {
    use segbus_core::config::ArbitrationPolicy;
    use segbus_model::ids::SegmentId;
    use segbus_model::mapping::Allocation;
    use segbus_model::psdf::{Application, Flow, Process};

    let mut app = Application::new("contended");
    let producers: Vec<ProcessId> = (0..3)
        .map(|i| app.add_process(Process::initial(format!("A{i}"))))
        .collect();
    let sink = app.add_process(Process::final_("SINK"));
    for &p in &producers {
        app.add_flow(Flow::new(p, sink, 8 * 36, 1, 10))
            .expect("valid");
    }
    let mut alloc = Allocation::new(1);
    for p in producers.iter().chain(std::iter::once(&sink)) {
        alloc.assign(*p, SegmentId(0));
    }
    let psm =
        Psm::new(segbus_apps::generators::uniform_platform(1, 36), app, alloc).expect("valid");

    let mut t = Table::new([
        "policy",
        "makespan_us",
        "a0_end_us",
        "a2_end_us",
        "finish_spread_us",
    ]);
    for (name, policy) in [
        ("fifo", ArbitrationPolicy::Fifo),
        ("fixed_priority", ArbitrationPolicy::FixedPriority),
        ("fair_round_robin", ArbitrationPolicy::FairRoundRobin),
    ] {
        let cfg = EmulatorConfig {
            arbitration: policy,
            ..EmulatorConfig::default()
        };
        let r = Emulator::new(cfg).run(&psm);
        let ends: Vec<f64> = (0..3)
            .map(|i| r.fus[i].end.expect("producers ran").as_micros_f64())
            .collect();
        let spread = ends.iter().cloned().fold(f64::MIN, f64::max)
            - ends.iter().cloned().fold(f64::MAX, f64::min);
        t.row([
            name.to_string(),
            format!("{:.2}", r.execution_time().as_micros_f64()),
            format!("{:.2}", ends[0]),
            format!("{:.2}", ends[2]),
            format!("{spread:.2}"),
        ]);
    }
    t
}

/// A12 — streaming extension: pipelined multi-frame execution. The paper
/// emulates one decoded frame; `Emulator::run_frames` streams `N` frames
/// through the wave schedule and measures throughput.
pub fn streaming_throughput() -> Table {
    let mut t = Table::new([
        "application",
        "frames",
        "makespan_us",
        "us_per_frame",
        "pipelining_speedup",
    ]);
    for (name, psm) in [
        ("mp3-3seg", mp3::three_segment_psm()),
        (
            "jpeg-3seg",
            segbus_apps::library::on_paper_platform(segbus_apps::library::jpeg_encoder(), 3),
        ),
    ] {
        let t1 = Emulator::default().run(&psm).makespan.0 as f64;
        for frames in [1u64, 2, 4, 8, 16] {
            let tn = Emulator::default().run_frames(&psm, frames).makespan.0 as f64;
            t.row([
                name.to_string(),
                frames.to_string(),
                format!("{:.2}", tn / 1e6),
                format!("{:.2}", tn / frames as f64 / 1e6),
                format!("{:.2}", frames as f64 * t1 / tn),
            ]);
        }
    }
    t
}

/// E2 paper-vs-measured side-by-side: every counter of the §4 print-out
/// with the paper's printed value, the measured value, and the status
/// (exact / approximate with the documented cause).
pub fn e2_comparison() -> Table {
    let r = threeseg_report();
    let mut t = Table::new(["counter", "paper", "measured", "status"]);
    let mut row = |name: &str, paper: u64, measured: u64, exact_expected: bool| {
        let status = if paper == measured {
            "exact"
        } else if exact_expected {
            "MISMATCH"
        } else {
            "approx (unpublished per-flow costs)"
        };
        t.row([
            name.to_string(),
            paper.to_string(),
            measured.to_string(),
            status.to_string(),
        ]);
    };
    // Fully determined by Fig. 8 × Fig. 9 — must be exact.
    row("BU12 packages in", 32, r.bus[0].total_in(), true);
    row("BU12 packages out", 32, r.bus[0].total_out(), true);
    row("BU23 packages in", 2, r.bus[1].total_in(), true);
    row("BU23 packages out", 2, r.bus[1].total_out(), true);
    row(
        "Segment1 packets to right",
        32,
        r.sas[0].packets_to_right,
        true,
    );
    row(
        "Segment2 packets to left",
        0,
        r.sas[1].packets_to_left,
        true,
    );
    row(
        "Segment3 packets to left",
        1,
        r.sas[2].packets_to_left,
        true,
    );
    row(
        "SA1 inter-segment requests",
        32,
        r.sas[0].inter_requests,
        true,
    );
    row(
        "SA2 inter-segment requests",
        0,
        r.sas[1].inter_requests,
        true,
    );
    row(
        "SA3 inter-segment requests",
        1,
        r.sas[2].inter_requests,
        true,
    );
    row("BU12 TCT", 2336, r.bus[0].tct, true);
    row("BU23 TCT", 146, r.bus[1].tct, true);
    // Depend on the 19 unpublished per-flow costs — approximate.
    row("SA1 TCT", 34_764, r.sas[0].tct, false);
    row("SA2 TCT", 46_031, r.sas[1].tct, false);
    row("SA3 TCT", 35_884, r.sas[2].tct, false);
    row("CA TCT", 54_367, r.ca.tct, false);
    row(
        "SA1 intra-segment requests",
        124,
        r.sas[0].intra_requests,
        false,
    );
    row(
        "SA2 intra-segment requests",
        137,
        r.sas[1].intra_requests,
        false,
    );
    row(
        "Execution time (ps)",
        489_792_303,
        r.execution_time().0,
        false,
    );
    t
}

/// Helper for the E2 binary: start/end instants of the paper's named
/// processes (P0, P8, P7, P14).
pub fn e2_highlights(report: &segbus_core::EmulationReport) -> Vec<(String, Picos, Picos)> {
    [0u32, 8, 7]
        .into_iter()
        .map(|i| {
            let fu = report.fu(ProcessId(i));
            (
                format!("P{i}"),
                fu.start.unwrap_or(Picos::ZERO),
                fu.end.unwrap_or(Picos::ZERO),
            )
        })
        .chain(std::iter::once({
            let fu = report.fu(ProcessId(14));
            (
                "P14 (last package received)".to_string(),
                fu.last_received.unwrap_or(Picos::ZERO),
                fu.last_received.unwrap_or(Picos::ZERO),
            )
        }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_matches_paper_cells() {
        let m = fig8_matrix();
        assert_eq!(m.items(ProcessId(0), ProcessId(1)), 576);
        assert_eq!(m.items(ProcessId(3), ProcessId(11)), 540);
        assert_eq!(m.items(ProcessId(10), ProcessId(11)), 36);
        assert_eq!(m.items(ProcessId(14), ProcessId(0)), 0);
    }

    #[test]
    fn fig10_has_all_active_processes() {
        let t = fig10_timeline();
        // All 15 processes appear (14 producers + the sink).
        assert_eq!(t.len(), 15);
        assert!(t.to_csv().contains("P14"));
    }

    #[test]
    fn fig11_covers_every_element() {
        let t = fig11_activity();
        assert_eq!(t.len(), 3 + 1 + 2); // SAs + CA + BUs
        let csv = t.to_csv();
        assert!(csv.contains("SA1") && csv.contains("CA") && csv.contains("BU23"));
    }

    #[test]
    fn accuracy_rows_reproduce_paper_shape() {
        let rows = accuracy_rows();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.accuracy > 0.85 && r.accuracy < 1.0,
                "{}: {}",
                r.config,
                r.accuracy
            );
        }
        // Smaller packages hurt accuracy (93 % vs 95 % in the paper).
        assert!(rows[1].accuracy < rows[0].accuracy);
        // Both engines slow down when P9 moves.
        assert!(rows[2].estimated_us > rows[0].estimated_us);
        assert!(rows[2].actual_us > rows[0].actual_us);
    }

    #[test]
    fn bu_utilisation_matches_paper_identities() {
        let t = bu_utilisation();
        let csv = t.to_csv();
        // UP12 = 2304 and UP23 = 144 exactly as in the paper.
        assert!(csv.contains("BU12,2304,"), "{csv}");
        assert!(csv.contains("BU23,144,"), "{csv}");
    }

    #[test]
    fn placement_tool_beats_naive_baselines() {
        let t = placement_comparison();
        let csv = t.to_csv();
        let cut = |name: &str| -> u64 {
            csv.lines()
                .find(|l| l.starts_with(name))
                .unwrap()
                .split(',')
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(cut("PlaceTool best") <= cut("round-robin"));
        assert!(cut("PlaceTool best") <= cut("Fig. 9 (hand)"));
    }

    #[test]
    fn two_segment_placement_beats_or_ties_hand() {
        let csv = placement_two_segments().to_csv();
        let cut = |name: &str| -> u64 {
            csv.lines()
                .find(|l| l.starts_with(name))
                .unwrap()
                .split(',')
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(cut("PlaceTool best") <= cut("Fig. 9 (hand)"));
        // KL is balance-constrained (8/7) yet matches the paper's
        // hand-tuned 9/6 bipartition quality.
        assert!(cut("Kernighan-Lin") <= cut("Fig. 9 (hand)"));
    }

    #[test]
    fn sweep_runs_all_sizes() {
        let t = package_size_sweep(&SWEEP_SIZES);
        assert_eq!(t.len(), SWEEP_SIZES.len());
    }

    #[test]
    fn cost_models_order_as_designed() {
        let csv = cost_model_ablation().to_csv();
        let ratio = |name: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(name))
                .unwrap()
                .rsplit(',')
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        // per-item: nearly invariant; affine: the paper's ~1.14;
        // per-package: compute doubles.
        assert!(ratio("per_item(36)") < ratio("affine(base=40;ref=36)"));
        assert!(ratio("affine(base=40;ref=36)") < ratio("per_package"));
        assert!(ratio("per_package") > 1.5);
    }

    #[test]
    fn faster_clocks_shorten_execution() {
        let t = clock_sensitivity(&[0.5, 1.0, 2.0]);
        let csv = t.to_csv();
        let us: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse().unwrap())
            .collect();
        assert!(us[0] > us[1] && us[1] > us[2], "{us:?}");
    }

    #[test]
    fn e2_comparison_has_no_mismatch_on_determined_counters() {
        let csv = e2_comparison().to_csv();
        assert!(!csv.contains("MISMATCH"), "{csv}");
        // 12 exact rows + 7 approximate ones.
        assert_eq!(csv.matches(",exact").count(), 12, "{csv}");
    }

    #[test]
    fn streaming_speedup_grows_with_frames() {
        let csv = streaming_throughput().to_csv();
        let speedups: Vec<f64> = csv
            .lines()
            .skip(1)
            .filter(|l| l.starts_with("mp3"))
            .map(|l| l.rsplit(',').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(speedups.len(), 5);
        assert!((speedups[0] - 1.0).abs() < 1e-9, "1 frame = no pipelining");
        assert!(speedups[4] > speedups[1], "{speedups:?}");
    }

    #[test]
    fn arbitration_policies_differ_in_fairness() {
        let csv = arbitration_comparison().to_csv();
        let spread = |name: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(name))
                .unwrap()
                .rsplit(',')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(spread("fair_round_robin") <= spread("fixed_priority"));
    }

    #[test]
    fn ring_beats_linear_on_hub_workloads() {
        let csv = topology_comparison().to_csv();
        for line in csv.lines().skip(1) {
            let speedup: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(speedup > 1.0, "{line}");
        }
    }

    #[test]
    fn energy_comparison_shapes() {
        let csv = energy_comparison().to_csv();
        let total = |name: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(name))
                .unwrap()
                .split(',')
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        // Smaller packages and the P9 move both cost energy.
        assert!(total("3 seg s=18") > total("3 segments"));
        assert!(total("3 seg P9 moved") > total("3 segments"));
    }

    #[test]
    fn library_accuracy_band_holds_everywhere() {
        let csv = application_library().to_csv();
        assert_eq!(csv.lines().count(), 1 + 15); // 5 apps × 3 segment counts
        for line in csv.lines().skip(1) {
            let acc: f64 = line
                .rsplit(',')
                .next()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!((80.0..100.0).contains(&acc), "{line}");
        }
    }

    #[test]
    fn flow_control_costs_time() {
        let csv = release_policy_ablation().to_csv();
        for line in csv.lines().skip(1) {
            let speedup: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(speedup >= 1.0, "{line}");
        }
    }
}
