//! Schema-stability tests: every experiment table keeps its column layout
//! (downstream plotting scripts parse these CSVs).

use segbus_report as report;

fn header(csv: &str) -> &str {
    csv.lines().next().unwrap()
}

#[test]
fn csv_headers_are_stable() {
    assert_eq!(
        header(&report::fig10_timeline().to_csv()),
        "process,start_us,end_us"
    );
    assert_eq!(
        header(&report::fig11_activity().to_csv()),
        "element,busy_ticks_s18,busy_ticks_s36,tct_s18,tct_s36"
    );
    assert_eq!(
        header(&report::accuracy_table().to_csv()),
        "config,est_us,act_us,accuracy,paper_est_us,paper_act_us,paper_accuracy"
    );
    assert_eq!(
        header(&report::bu_utilisation().to_csv()),
        "bu,UP_ticks,TCT_ticks,avg_WP_ticks"
    );
    assert_eq!(
        header(&report::segment_comparison().to_csv()),
        "config,est_us,inter_seg_packages,ca_grants"
    );
    assert_eq!(
        header(&report::placement_comparison().to_csv()),
        "allocation,package_cut,est_us"
    );
    assert_eq!(
        header(&report::energy_comparison().to_csv()),
        "config,total_uj,compute_uj,comm_fraction"
    );
    assert_eq!(
        header(&report::topology_comparison().to_csv()),
        "workers,linear_us,ring_us,ring_speedup"
    );
    assert_eq!(
        header(&report::streaming_throughput().to_csv()),
        "application,frames,makespan_us,us_per_frame,pipelining_speedup"
    );
    assert_eq!(
        header(&report::e2_comparison().to_csv()),
        "counter,paper,measured,status"
    );
}

#[test]
fn no_cell_contains_a_comma_smuggler() {
    // Table::to_csv does not quote; every experiment must therefore keep
    // commas out of its cells. Column counts prove it.
    for (name, csv) in [
        ("fig10", report::fig10_timeline().to_csv()),
        ("fig11", report::fig11_activity().to_csv()),
        ("accuracy", report::accuracy_table().to_csv()),
        ("bu", report::bu_utilisation().to_csv()),
        ("segments", report::segment_comparison().to_csv()),
        ("place", report::placement_comparison().to_csv()),
        ("energy", report::energy_comparison().to_csv()),
        ("topology", report::topology_comparison().to_csv()),
        ("streaming", report::streaming_throughput().to_csv()),
        ("e2", report::e2_comparison().to_csv()),
        ("apps", report::application_library().to_csv()),
        ("arbitration", report::arbitration_comparison().to_csv()),
        ("costmodel", report::cost_model_ablation().to_csv()),
        ("release", report::release_policy_ablation().to_csv()),
    ] {
        let cols = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(
                line.split(',').count(),
                cols,
                "{name}: ragged CSV row {line:?}"
            );
        }
    }
}
