//! A minimal XML document model.
//!
//! Enough XML for the SegBus schemes: elements with attributes, child
//! elements and text nodes. No namespaces beyond literal prefixes
//! (`xs:element` is just a name containing a colon), no DTDs, no CDATA.

use std::fmt;

/// A document: the optional `<?xml …?>` declaration plus one root element.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct XmlDocument {
    /// `true` if the document carries the standard XML declaration.
    pub declaration: bool,
    /// The root element.
    pub root: XmlElement,
}

impl XmlDocument {
    /// A document with the standard declaration.
    pub fn new(root: XmlElement) -> XmlDocument {
        XmlDocument {
            declaration: true,
            root,
        }
    }

    /// Serialise with two-space indentation (see [`crate::writer`]).
    pub fn to_xml_string(&self) -> String {
        crate::writer::write_document(self)
    }
}

/// An element node: name, attributes in document order, children.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct XmlElement {
    /// Tag name, colons included verbatim (`xs:complexType`).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

/// A child node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum XmlNode {
    /// A nested element.
    Element(XmlElement),
    /// Character data (entity-decoded).
    Text(String),
}

impl XmlElement {
    /// An element with no attributes or children.
    pub fn new(name: impl Into<String>) -> XmlElement {
        XmlElement {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style attribute. Setting a key that already exists replaces
    /// its value (duplicate attribute names are not well-formed XML and the
    /// parser rejects them).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> XmlElement {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attributes.push((key, value));
        }
        self
    }

    /// Builder-style child element.
    pub fn child(mut self, e: XmlElement) -> XmlElement {
        self.children.push(XmlNode::Element(e));
        self
    }

    /// Builder-style text child.
    pub fn text(mut self, t: impl Into<String>) -> XmlElement {
        self.children.push(XmlNode::Text(t.into()));
        self
    }

    /// Value of an attribute, if present.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &XmlElement> {
        self.children.iter().filter_map(|n| match n {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// Child elements with a given tag name.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.elements().filter(move |e| e.name == name)
    }

    /// First child element with a given tag name.
    pub fn first_named<'a>(&'a self, name: &str) -> Option<&'a XmlElement> {
        self.elements().find(|e| e.name == name)
    }

    /// Concatenated text content of direct text children, trimmed.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let XmlNode::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Recursively count elements (including self).
    pub fn element_count(&self) -> usize {
        1 + self
            .elements()
            .map(XmlElement::element_count)
            .sum::<usize>()
    }
}

impl fmt::Display for XmlElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::writer::write_element_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XmlElement {
        XmlElement::new("xs:schema")
            .attr("name", "demo")
            .child(
                XmlElement::new("xs:complexType")
                    .attr("name", "P0")
                    .child(XmlElement::new("xs:element").attr("name", "P1_36_1_250")),
            )
            .child(XmlElement::new("note").text("hello"))
    }

    #[test]
    fn builders_and_accessors() {
        let e = sample();
        assert_eq!(e.attribute("name"), Some("demo"));
        assert_eq!(e.attribute("missing"), None);
        assert_eq!(e.elements().count(), 2);
        assert_eq!(e.elements_named("xs:complexType").count(), 1);
        assert!(e.first_named("note").is_some());
        assert_eq!(e.first_named("note").unwrap().text_content(), "hello");
        assert_eq!(e.element_count(), 4);
    }

    #[test]
    fn text_content_trims() {
        let e = XmlElement::new("a").text("  x  ");
        assert_eq!(e.text_content(), "x");
        assert_eq!(XmlElement::new("b").text_content(), "");
    }
}
