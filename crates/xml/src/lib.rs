//! # segbus-xml
//!
//! The Model-to-Text substrate of the design flow (paper §3.4): SegBus
//! models are exchanged as XSD-flavoured *XML schemes* produced by the UML
//! tool's code-generation engine and consumed by the emulator. The paper's
//! toolchain (MagicDraw code-engineering sets, `javax.xml.parsers`) is
//! proprietary; this crate rebuilds the pipeline from scratch:
//!
//! * [`doc`] — a small XML document model (elements, attributes, text);
//! * [`parse`] — a hand-written tokenizer/parser with line/column errors;
//! * [`writer`] — serialisation with escaping and indentation;
//! * [`m2t`] — the Model-to-Text transformation: PSDF and PSM models to
//!   XML schemes using the paper's conventions (one `xs:complexType` per
//!   platform element or process, flow elements named
//!   `<target>_<items>_<order>_<ticks>` — e.g. `P1_576_1_250`);
//! * [`import`] — the emulator-side parse of the generated schemes back
//!   into [`segbus_model`] objects.
//!
//! Round-tripping is lossless and property-tested:
//! `import(export(model)) == model`.
//!
//! ```
//! use segbus_apps::mp3;
//! use segbus_xml::{m2t, import};
//!
//! let app = mp3::mp3_decoder();
//! let xml = m2t::export_psdf(&app).to_xml_string();
//! assert!(xml.contains("P1_576_1_250")); // the paper's own example
//! let back = import::import_psdf(&segbus_xml::parse(&xml).unwrap()).unwrap();
//! assert_eq!(back, app);
//! ```

#![warn(missing_docs)]

pub mod doc;
pub mod import;
pub mod m2t;
pub mod parser;
pub mod writer;

pub use doc::{XmlDocument, XmlElement, XmlNode};
pub use parser::parse;
pub use segbus_model::diag::{SegbusError, SourceSpan};
