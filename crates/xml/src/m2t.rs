//! The Model-to-Text transformation (paper §3.4).
//!
//! Two *code engineering sets* exist in the paper's tool — one for the
//! PSDF and one for the PSM — each producing an XSD-flavoured XML scheme.
//! The conventions reproduced here are the paper's own:
//!
//! * one `xs:complexType` per application process or platform element;
//! * a process's outgoing flows appear as `xs:element`s named
//!   `<target>_<items>_<order>_<ticks>` (the paper's `P1_576_1_250`);
//! * the platform type (`SBP`) aggregates `segmentN`, `ca` and `buXY`
//!   elements; each segment type lists its FUs, its `arbiter` and its
//!   `buLeft`/`buRight` interfaces.
//!
//! Quantities the paper's snippets leave implicit but the emulator needs —
//! clock periods, the package size, the cost model — are carried as
//! attributes (`periodPs`, `packageSize`, `costModel`, …) so that the
//! round-trip through [`crate::import`] is lossless.

use segbus_model::ids::SegmentId;
use segbus_model::mapping::Psm;
use segbus_model::psdf::{Application, CostModel, ProcessKind};

use crate::doc::{XmlDocument, XmlElement};

const XS_NS: &str = "http://www.w3.org/2001/XMLSchema";

/// Generate the PSDF scheme.
pub fn export_psdf(app: &Application) -> XmlDocument {
    let mut schema = XmlElement::new("xs:schema")
        .attr("xmlns:xs", XS_NS)
        .attr("name", app.name());
    schema = match app.cost_model() {
        CostModel::PerItem {
            reference_package_size,
        } => schema
            .attr("costModel", "perItem")
            .attr("costReference", reference_package_size.to_string()),
        CostModel::PerPackage => schema.attr("costModel", "perPackage"),
        CostModel::Affine {
            base_ticks,
            reference_package_size,
        } => schema
            .attr("costModel", "affine")
            .attr("costBase", base_ticks.to_string())
            .attr("costReference", reference_package_size.to_string()),
    };
    for (i, p) in app.processes().iter().enumerate() {
        let pid = segbus_model::ids::ProcessId(i as u32);
        let kind = match p.kind {
            ProcessKind::Initial => "initial",
            ProcessKind::Internal => "process",
            ProcessKind::Final => "final",
        };
        let mut ct = XmlElement::new("xs:complexType")
            .attr("name", p.name.clone())
            .attr("kind", kind);
        let mut all = XmlElement::new("xs:all");
        let mut any = false;
        for fid in app.outputs_of(pid) {
            let f = app.flow(fid);
            let dst = &app.process(f.dst).name;
            // `seq` preserves the global flow order across the grouping by
            // source process, making the round trip lossless.
            let mut fel = XmlElement::new("xs:element")
                .attr("name", format!("{dst}_{}_{}_{}", f.items, f.order, f.ticks))
                .attr("seq", fid.0.to_string());
            if let Some(noise) = app.flow_noise(fid) {
                if let Some(d) = &noise.items {
                    fel = fel.attr("itemsDist", d.encode());
                }
                if let Some(d) = &noise.ticks {
                    fel = fel.attr("ticksDist", d.encode());
                }
                if let Some(d) = &noise.jitter {
                    fel = fel.attr("jitter", d.encode());
                }
            }
            all = all.child(fel);
            any = true;
        }
        if any {
            ct = ct.child(all);
        }
        schema = schema.child(ct);
    }
    XmlDocument::new(schema)
}

/// Generate the PSM scheme for a validated model.
pub fn export_psm(psm: &Psm) -> XmlDocument {
    let platform = psm.platform();
    let app = psm.application();
    let mut schema = XmlElement::new("xs:schema")
        .attr("xmlns:xs", XS_NS)
        .attr("name", platform.name())
        .attr("topology", platform.topology().to_string())
        .attr("packageSize", platform.package_size().to_string());

    // The platform aggregate.
    let mut sbp_all = XmlElement::new("xs:all");
    for i in 0..platform.segment_count() {
        sbp_all = sbp_all.child(
            XmlElement::new("xs:element")
                .attr("name", format!("segment{}", i + 1))
                .attr("type", format!("Segment{}", i + 1)),
        );
    }
    sbp_all = sbp_all.child(
        XmlElement::new("xs:element")
            .attr("name", "ca")
            .attr("type", "CA"),
    );
    for bu in platform.border_units() {
        sbp_all = sbp_all.child(
            XmlElement::new("xs:element")
                .attr("name", bu.to_string().to_lowercase())
                .attr("type", bu.to_string()),
        );
    }
    schema = schema.child(
        XmlElement::new("xs:complexType")
            .attr("name", "SBP")
            .child(sbp_all),
    );

    // The central arbiter.
    schema = schema.child(
        XmlElement::new("xs:complexType")
            .attr("name", "CA")
            .attr("periodPs", platform.ca_clock().period_ps().to_string()),
    );

    // Segments with their FUs, arbiter and BU interfaces.
    for i in 0..platform.segment_count() {
        let seg = SegmentId(i as u16);
        let mut all = XmlElement::new("xs:all");
        // BU interfaces: the unit on which this segment is the left
        // neighbour is its `buRight` and vice versa — this also covers a
        // ring's wrap-around unit.
        for bu in platform.border_units() {
            if bu.left == seg {
                all = all.child(
                    XmlElement::new("xs:element")
                        .attr("name", "buRight")
                        .attr("type", bu.to_string()),
                );
            }
        }
        for bu in platform.border_units() {
            if bu.right() == seg {
                all = all.child(
                    XmlElement::new("xs:element")
                        .attr("name", "buLeft")
                        .attr("type", bu.to_string()),
                );
            }
        }
        for p in psm.allocation().processes_on(seg) {
            let name = &app.process(p).name;
            all = all.child(
                XmlElement::new("xs:element")
                    .attr("name", name.to_lowercase())
                    .attr("type", name.clone()),
            );
        }
        all = all.child(
            XmlElement::new("xs:element")
                .attr("name", "arbiter")
                .attr("type", format!("SA{}", i + 1)),
        );
        schema = schema.child(
            XmlElement::new("xs:complexType")
                .attr("name", format!("Segment{}", i + 1))
                .attr("segmentName", platform.segment(seg).name.clone())
                .attr(
                    "periodPs",
                    platform.segment_clock(seg).period_ps().to_string(),
                )
                .child(all),
        );
    }

    // Border-unit types, with explicit endpoints (the paper's `BU12` name
    // encoding is ambiguous beyond nine segments).
    for bu in platform.border_units() {
        schema = schema.child(
            XmlElement::new("xs:complexType")
                .attr("name", bu.to_string())
                .attr("left", (bu.left.0 + 1).to_string())
                .attr("right", (bu.right().0 + 1).to_string()),
        );
    }
    XmlDocument::new(schema)
}

/// Decode a flow element name `<target>_<items>_<order>_<ticks>`.
/// Target names may themselves contain underscores; the three trailing
/// fields are numeric.
pub fn decode_flow_name(name: &str) -> Option<(String, u64, u32, u64)> {
    let mut parts: Vec<&str> = name.rsplitn(4, '_').collect();
    if parts.len() != 4 {
        return None;
    }
    parts.reverse(); // [target, items, order, ticks]
    let target = parts[0].to_string();
    let items = parts[1].parse().ok()?;
    let order = parts[2].parse().ok()?;
    let ticks = parts[3].parse().ok()?;
    if target.is_empty() {
        return None;
    }
    Some((target, items, order, ticks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_apps::mp3;

    #[test]
    fn psdf_scheme_uses_paper_naming() {
        let xml = export_psdf(&mp3::mp3_decoder()).to_xml_string();
        // The exact element from the paper's §3.5 walkthrough.
        assert!(xml.contains("name=\"P1_576_1_250\""), "{xml}");
        assert!(xml.contains("<xs:complexType name=\"P0\" kind=\"initial\">"));
        assert!(xml.contains("xs:all"));
    }

    #[test]
    fn psm_scheme_matches_paper_structure() {
        let xml = export_psm(&mp3::three_segment_psm()).to_xml_string();
        // From the paper's PSM snippet: SBP with three segments, ca, BUs...
        assert!(xml.contains("name=\"SBP\""));
        assert!(xml.contains("name=\"segment1\" type=\"Segment1\""));
        assert!(xml.contains("name=\"ca\" type=\"CA\""));
        assert!(xml.contains("name=\"bu12\" type=\"BU12\""));
        assert!(xml.contains("name=\"bu23\" type=\"BU23\""));
        // ... and Segment1 hosting its FUs and arbiter.
        assert!(xml.contains("name=\"buRight\" type=\"BU12\""));
        assert!(xml.contains("name=\"p5\" type=\"P5\""));
        assert!(xml.contains("name=\"arbiter\" type=\"SA2\""));
        // Carried timing.
        assert!(xml.contains("periodPs=\"9009\""));
        assert!(xml.contains("packageSize=\"36\""));
    }

    #[test]
    fn decode_flow_name_variants() {
        assert_eq!(
            decode_flow_name("P1_576_1_250"),
            Some(("P1".into(), 576, 1, 250))
        );
        // Target names containing underscores decode from the right.
        assert_eq!(
            decode_flow_name("left_scale_36_2_100"),
            Some(("left_scale".into(), 36, 2, 100))
        );
        assert_eq!(decode_flow_name("P1_576_1"), None);
        assert_eq!(decode_flow_name("P1_x_1_250"), None);
        assert_eq!(decode_flow_name("_576_1_250"), None);
    }
}
