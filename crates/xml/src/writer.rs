//! XML serialisation with escaping and two-space indentation.

use std::fmt::Write as _;

use crate::doc::{XmlDocument, XmlElement, XmlNode};

/// Serialise a document, with the declaration when present.
pub fn write_document(doc: &XmlDocument) -> String {
    let mut out = String::new();
    if doc.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    }
    write_element(&mut out, &doc.root, 0);
    out
}

/// Serialise one element (used by `Display`).
pub fn write_element_string(el: &XmlElement) -> String {
    let mut out = String::new();
    write_element(&mut out, el, 0);
    out
}

fn write_element(out: &mut String, el: &XmlElement, depth: usize) {
    let pad = "  ".repeat(depth);
    let _ = write!(out, "{pad}<{}", el.name);
    for (k, v) in &el.attributes {
        let _ = write!(out, " {k}=\"{}\"", escape(v, true));
    }
    if el.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // Pure-text elements render inline; mixed/element content indents.
    let only_text = el.children.iter().all(|c| matches!(c, XmlNode::Text(_)));
    if only_text {
        out.push('>');
        for c in &el.children {
            if let XmlNode::Text(t) = c {
                out.push_str(&escape(t, false));
            }
        }
        let _ = writeln!(out, "</{}>", el.name);
        return;
    }
    out.push_str(">\n");
    for c in &el.children {
        match c {
            XmlNode::Element(e) => write_element(out, e, depth + 1),
            XmlNode::Text(t) => {
                let _ = writeln!(out, "{}  {}", pad, escape(t.trim(), false));
            }
        }
    }
    let _ = writeln!(out, "{pad}</{}>", el.name);
}

fn escape(s: &str, in_attribute: bool) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attribute => out.push_str("&quot;"),
            '\'' if in_attribute => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn writes_declaration_and_indents() {
        let doc = XmlDocument::new(XmlElement::new("a").child(XmlElement::new("b").attr("k", "v")));
        let s = doc.to_xml_string();
        assert!(s.starts_with("<?xml version=\"1.0\""));
        assert!(s.contains("\n  <b k=\"v\"/>\n"));
    }

    #[test]
    fn escapes_attributes_and_text() {
        let doc = XmlDocument::new(
            XmlElement::new("a")
                .attr("k", "x<\"&'>")
                .text("1 < 2 & 3 > 0"),
        );
        let s = doc.to_xml_string();
        assert!(s.contains("k=\"x&lt;&quot;&amp;&apos;&gt;\""));
        assert!(s.contains("1 &lt; 2 &amp; 3 &gt; 0"));
    }

    #[test]
    fn write_parse_round_trip() {
        let doc = XmlDocument::new(
            XmlElement::new("xs:schema")
                .attr("name", "demo & <co>")
                .child(
                    XmlElement::new("xs:complexType")
                        .attr("name", "P0")
                        .child(XmlElement::new("xs:element").attr("name", "P1_576_1_250")),
                )
                .child(XmlElement::new("note").text("some 'text' & more")),
        );
        let s = doc.to_xml_string();
        let back = parse(&s).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn text_only_elements_inline() {
        let s = XmlDocument::new(XmlElement::new("a").text("hi")).to_xml_string();
        assert!(s.contains("<a>hi</a>"));
    }
}
