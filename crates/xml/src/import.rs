//! Emulator-side import of the generated XML schemes (paper §3.5).
//!
//! The emulator "parses the generated XMLs and builds the required
//! structure of platform and allocation of resources". [`import_psdf`]
//! rebuilds the application; [`import_psm`] rebuilds the platform and the
//! allocation against a given application (the PSM references processes by
//! name).

use segbus_model::diag::SegbusError;
use segbus_model::ids::SegmentId;
use segbus_model::mapping::{Allocation, Psm};
use segbus_model::platform::{Platform, Topology};
use segbus_model::psdf::{Application, CostModel, Flow, Process};
use segbus_model::stochastic::{Dist, FlowNoise};
use segbus_model::time::ClockDomain;

use crate::doc::{XmlDocument, XmlElement};
use crate::m2t::decode_flow_name;

/// Scheme-structure failure (`X002`): a required element or attribute is
/// missing, misnamed or malformed.
fn err(msg: impl Into<String>) -> SegbusError {
    SegbusError::new("X002", format!("scheme import error: {}", msg.into()))
}

/// Scheme-value failure (`X003`): an attribute is present but its value is
/// outside the domain the model accepts.
fn value_err(msg: impl Into<String>) -> SegbusError {
    SegbusError::new("X003", format!("scheme import error: {}", msg.into()))
}

/// Stochastic-annotation failure (`X004`): an `itemsDist`/`ticksDist`/
/// `jitter` attribute does not encode a usable distribution.
fn dist_err(msg: impl Into<String>) -> SegbusError {
    SegbusError::new("X004", format!("scheme import error: {}", msg.into()))
}

fn req_attr<'a>(el: &'a XmlElement, key: &str) -> Result<&'a str, SegbusError> {
    el.attribute(key)
        .ok_or_else(|| err(format!("<{}> lacks the {key:?} attribute", el.name)))
}

fn parse_num<T: std::str::FromStr>(el: &XmlElement, key: &str) -> Result<T, SegbusError> {
    req_attr(el, key)?.parse().map_err(|_| {
        value_err(format!(
            "attribute {key:?} of <{}> is not a number in range",
            el.name
        ))
    })
}

/// Rebuild an [`Application`] from a PSDF scheme.
pub fn import_psdf(doc: &XmlDocument) -> Result<Application, SegbusError> {
    let schema = &doc.root;
    if schema.name != "xs:schema" {
        return Err(err("root element must be xs:schema"));
    }
    let name = req_attr(schema, "name")?;
    let mut app = Application::new(name);

    let cost_model = match schema.attribute("costModel") {
        // `NonZeroU32::from_str` rejects zero, so a `costReference="0"`
        // surfaces as the same typed value error as any other bad number.
        None | Some("perItem") => CostModel::PerItem {
            reference_package_size: schema
                .attribute("costReference")
                .map(|v| v.parse().map_err(|_| value_err("bad costReference")))
                .transpose()?
                .unwrap_or(CostModel::REFERENCE_36),
        },
        Some("perPackage") => CostModel::PerPackage,
        Some("affine") => CostModel::Affine {
            base_ticks: parse_num(schema, "costBase")?,
            reference_package_size: parse_num(schema, "costReference")?,
        },
        Some(other) => return Err(err(format!("unknown costModel {other:?}"))),
    };
    app.set_cost_model(cost_model);

    // First pass: processes (document order defines the ids).
    for ct in schema.elements_named("xs:complexType") {
        let pname = req_attr(ct, "name")?;
        let process = match ct.attribute("kind") {
            Some("initial") => Process::initial(pname),
            Some("final") => Process::final_(pname),
            None | Some("process") => Process::new(pname),
            Some(other) => return Err(err(format!("unknown process kind {other:?}"))),
        };
        app.add_process(process);
    }

    // Second pass: flows, restored to their global order via the `seq`
    // attribute (falling back to document order when absent).
    let mut flows: Vec<(u32, Flow, FlowNoise)> = Vec::new();
    let mut doc_order = 0u32;
    for ct in schema.elements_named("xs:complexType") {
        let src_name = req_attr(ct, "name")?;
        let src = app
            .process_by_name(src_name)
            .ok_or_else(|| err(format!("process {src_name:?} vanished between passes")))?;
        for all in ct.elements_named("xs:all") {
            for el in all.elements_named("xs:element") {
                let fname = req_attr(el, "name")?;
                let (target, items, order, ticks) = decode_flow_name(fname).ok_or_else(|| {
                    err(format!(
                        "flow element {fname:?} is not of the form <target>_<items>_<order>_<ticks>"
                    ))
                })?;
                let dst = app.process_by_name(&target).ok_or_else(|| {
                    err(format!("flow {fname:?} targets unknown process {target:?}"))
                })?;
                let seq = match el.attribute("seq") {
                    Some(v) => v
                        .parse()
                        .map_err(|_| value_err(format!("bad seq on flow {fname:?}")))?,
                    None => doc_order,
                };
                doc_order += 1;
                let mut noise = FlowNoise::default();
                for (attr, slot) in [
                    ("itemsDist", &mut noise.items),
                    ("ticksDist", &mut noise.ticks),
                    ("jitter", &mut noise.jitter),
                ] {
                    if let Some(v) = el.attribute(attr) {
                        *slot = Some(
                            Dist::decode(v)
                                .map_err(|e| dist_err(format!("{attr} on flow {fname:?}: {e}")))?,
                        );
                    }
                }
                flows.push((seq, Flow::new(src, dst, items, order, ticks), noise));
            }
        }
    }
    flows.sort_by_key(|(seq, _, _)| *seq);
    for (_, f, noise) in flows {
        let id = app.add_flow(f).map_err(SegbusError::from)?;
        if !noise.is_empty() {
            // Parameter validation (inverted ranges, zero-able items
            // distributions, …) lives in the model layer; surface it here
            // under the front end's own code.
            app.set_flow_noise(id, noise)
                .map_err(|e| dist_err(e.to_string()))?;
        }
    }
    Ok(app)
}

/// Rebuild the platform and allocation from a PSM scheme, resolving
/// process references against `app`.
pub fn import_psm(
    doc: &XmlDocument,
    app: &Application,
) -> Result<(Platform, Allocation), SegbusError> {
    let schema = &doc.root;
    if schema.name != "xs:schema" {
        return Err(err("root element must be xs:schema"));
    }
    let name = req_attr(schema, "name")?;
    let package_size: u32 = parse_num(schema, "packageSize")?;

    let ca_ct = schema
        .elements_named("xs:complexType")
        .find(|c| c.attribute("name") == Some("CA"))
        .ok_or_else(|| err("missing CA complexType"))?;
    let ca_period: u64 = parse_num(ca_ct, "periodPs")?;

    // Segments in numeric order.
    let mut segments: Vec<(usize, &XmlElement)> = Vec::new();
    for ct in schema.elements_named("xs:complexType") {
        let n = req_attr(ct, "name")?;
        if let Some(idx) = n.strip_prefix("Segment") {
            let idx: usize = idx
                .parse()
                .map_err(|_| err(format!("bad segment type name {n:?}")))?;
            segments.push((idx, ct));
        }
    }
    segments.sort_by_key(|(i, _)| *i);
    if segments.is_empty() {
        return Err(err("the scheme defines no segments"));
    }
    for (want, (got, _)) in segments.iter().enumerate() {
        if *got != want + 1 {
            return Err(err(format!(
                "segment numbering gap: expected Segment{}, found Segment{got}",
                want + 1
            )));
        }
    }

    let topology = match schema.attribute("topology") {
        None | Some("linear") => Topology::Linear,
        Some("ring") => Topology::Ring,
        Some(other) => return Err(err(format!("unknown topology {other:?}"))),
    };
    let ca_clock = ClockDomain::try_from_period_ps(ca_period)
        .ok_or_else(|| value_err("CA periodPs must be non-zero"))?;
    let mut builder = Platform::builder(name)
        .package_size(package_size)
        .topology(topology)
        .ca_clock(ca_clock);
    for (i, ct) in &segments {
        let period: u64 = parse_num(ct, "periodPs")?;
        let clock = ClockDomain::try_from_period_ps(period)
            .ok_or_else(|| value_err(format!("Segment{i} periodPs must be non-zero")))?;
        let seg_name = ct
            .attribute("segmentName")
            .map(str::to_owned)
            .unwrap_or_else(|| format!("Segment{i}"));
        builder = builder.segment(seg_name, clock);
    }
    let platform = builder.build().map_err(SegbusError::from)?;

    // Allocation: every FU element of every segment.
    let mut alloc = Allocation::new(platform.segment_count());
    for (i, ct) in &segments {
        let seg = SegmentId((*i - 1) as u16);
        for all in ct.elements_named("xs:all") {
            for el in all.elements_named("xs:element") {
                let ename = req_attr(el, "name")?;
                if ename == "arbiter" || ename == "buLeft" || ename == "buRight" {
                    continue;
                }
                let ty = req_attr(el, "type")?;
                let p = app
                    .process_by_name(ty)
                    .ok_or_else(|| err(format!("segment {i} hosts unknown process {ty:?}")))?;
                alloc.assign(p, seg);
            }
        }
    }
    Ok((platform, alloc))
}

/// Import both schemes and assemble a validated [`Psm`].
pub fn import_system(psdf: &XmlDocument, psm: &XmlDocument) -> Result<Psm, SegbusError> {
    let app = import_psdf(psdf)?;
    let (platform, alloc) = import_psm(psm, &app)?;
    Psm::new(platform, app, alloc).map_err(SegbusError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::m2t::{export_psdf, export_psm};
    use crate::parse;
    use segbus_apps::mp3;

    #[test]
    fn psdf_round_trip_is_lossless() {
        let app = mp3::mp3_decoder();
        let doc = export_psdf(&app);
        let back = import_psdf(&doc).unwrap();
        assert_eq!(back, app);
        // Also through the textual form.
        let reparsed = parse(&doc.to_xml_string()).unwrap();
        assert_eq!(import_psdf(&reparsed).unwrap(), app);
    }

    #[test]
    fn stochastic_annotations_round_trip() {
        use segbus_model::ids::FlowId;
        let mut app = mp3::mp3_decoder();
        app.set_flow_noise(
            FlowId(0),
            FlowNoise {
                items: Some(Dist::Uniform { lo: 500, hi: 600 }),
                ticks: Some(Dist::Normal {
                    mean: 250,
                    std: 30,
                    lo: 150,
                    hi: 350,
                }),
                jitter: Some(Dist::Choice(vec![(0, 3), (10, 1)])),
            },
        )
        .unwrap();
        let doc = crate::m2t::export_psdf(&app);
        let xml = doc.to_xml_string();
        assert!(xml.contains("itemsDist=\"uniform:500:600\""), "{xml}");
        assert!(xml.contains("jitter=\"choice:0:3:10:1\""), "{xml}");
        // Application equality includes the noise sidecar.
        let back = import_psdf(&parse(&xml).unwrap()).unwrap();
        assert_eq!(back, app);
    }

    #[test]
    fn bad_distributions_are_x004() {
        let doc = |attr: &str| {
            parse(&format!(
                r#"<xs:schema name="x">
                     <xs:complexType name="A" kind="initial">
                       <xs:all><xs:element name="B_36_1_10" seq="0" {attr}/></xs:all>
                     </xs:complexType>
                     <xs:complexType name="B" kind="final"/>
                   </xs:schema>"#
            ))
            .unwrap()
        };
        let e = import_psdf(&doc("ticksDist=\"poisson:4\"")).unwrap_err();
        assert_eq!(e.code, "X004");
        assert!(e.message.contains("poisson"), "{e}");
        let e = import_psdf(&doc("ticksDist=\"uniform:5:4\"")).unwrap_err();
        assert_eq!(e.code, "X004");
        let e = import_psdf(&doc("itemsDist=\"uniform:0:9\"")).unwrap_err();
        assert_eq!(e.code, "X004");
        let e = import_psdf(&doc("jitter=\"choice:1\"")).unwrap_err();
        assert_eq!(e.code, "X004");
        // A well-formed annotation still imports.
        assert!(import_psdf(&doc("jitter=\"constant:5\"")).is_ok());
    }

    #[test]
    fn psm_round_trip_is_lossless() {
        let psm = mp3::three_segment_psm();
        let doc = export_psm(&psm);
        let (platform, alloc) = import_psm(&doc, psm.application()).unwrap();
        assert_eq!(&platform, psm.platform());
        assert_eq!(&alloc, psm.allocation());
    }

    #[test]
    fn full_system_import_runs_in_the_emulator() {
        let psm = mp3::three_segment_psm();
        let psdf_doc = parse(&export_psdf(psm.application()).to_xml_string()).unwrap();
        let psm_doc = parse(&export_psm(&psm).to_xml_string()).unwrap();
        let system = import_system(&psdf_doc, &psm_doc).unwrap();
        assert_eq!(system.matrix(), psm.matrix());
        assert_eq!(system.platform().package_size(), 36);
    }

    #[test]
    fn missing_attributes_are_reported() {
        let doc = parse("<xs:schema name=\"x\"><xs:complexType/></xs:schema>").unwrap();
        let e = import_psdf(&doc).unwrap_err();
        assert!(e.to_string().contains("name"), "{e}");
    }

    #[test]
    fn unknown_flow_target_is_reported() {
        let doc = parse(
            r#"<xs:schema name="x">
                 <xs:complexType name="A" kind="initial">
                   <xs:all><xs:element name="GHOST_36_1_10"/></xs:all>
                 </xs:complexType>
               </xs:schema>"#,
        )
        .unwrap();
        let e = import_psdf(&doc).unwrap_err();
        assert!(e.to_string().contains("GHOST"), "{e}");
    }

    #[test]
    fn bad_flow_encoding_is_reported() {
        let doc = parse(
            r#"<xs:schema name="x">
                 <xs:complexType name="A">
                   <xs:all><xs:element name="nonsense"/></xs:all>
                 </xs:complexType>
               </xs:schema>"#,
        )
        .unwrap();
        assert!(import_psdf(&doc).is_err());
    }

    #[test]
    fn psm_requires_known_processes() {
        let psm = mp3::three_segment_psm();
        let doc = export_psm(&psm);
        let mut other = Application::new("other");
        other.add_process(Process::new("X"));
        let e = import_psm(&doc, &other).unwrap_err();
        assert!(e.to_string().contains("unknown process"), "{e}");
    }

    #[test]
    fn segment_numbering_gaps_rejected() {
        let doc = parse(
            r#"<xs:schema name="p" packageSize="36">
                 <xs:complexType name="CA" periodPs="9009"/>
                 <xs:complexType name="Segment2" periodPs="10989"><xs:all/></xs:complexType>
               </xs:schema>"#,
        )
        .unwrap();
        let app = Application::new("a");
        let e = import_psm(&doc, &app).unwrap_err();
        assert!(e.to_string().contains("numbering gap"), "{e}");
    }
}
