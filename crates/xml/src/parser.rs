//! Hand-written XML tokenizer and recursive-descent parser.
//!
//! Supports the subset the SegBus schemes need: the XML declaration,
//! comments, elements with quoted attributes, self-closing tags, character
//! data and the five predefined entities. Failures surface as
//! [`SegbusError`]s with code `X001` and a line/column span.

use segbus_model::diag::SegbusError;

use crate::doc::{XmlDocument, XmlElement, XmlNode};

/// Parse a complete document.
pub fn parse(input: &str) -> Result<XmlDocument, SegbusError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    p.skip_ws_and_comments();
    let declaration = p.try_declaration()?;
    p.skip_ws_and_comments();
    let root = p.element()?;
    p.skip_ws_and_comments();
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after the root element"));
    }
    Ok(XmlDocument { declaration, root })
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> SegbusError {
        SegbusError::new("X001", msg).with_span(
            u32::try_from(self.line).unwrap_or(u32::MAX),
            u32::try_from(self.col).unwrap_or(u32::MAX),
        )
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), SegbusError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.eat("<!--");
                while !self.starts_with("-->") {
                    if self.bump().is_none() {
                        return; // unterminated comment caught later
                    }
                }
                self.eat("-->");
            } else {
                return;
            }
        }
    }

    fn try_declaration(&mut self) -> Result<bool, SegbusError> {
        if !self.eat("<?xml") {
            return Ok(false);
        }
        while !self.starts_with("?>") {
            if self.bump().is_none() {
                return Err(self.err("unterminated XML declaration"));
            }
        }
        self.expect("?>")?;
        Ok(true)
    }

    fn name(&mut self) -> Result<String, SegbusError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn attribute_value(&mut self) -> Result<String, SegbusError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted attribute value")),
        };
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'&') => out.push(self.entity()?),
                Some(b'<') => return Err(self.err("'<' inside attribute value")),
                Some(c) => {
                    self.bump();
                    out.push(c as char);
                }
            }
        }
    }

    fn entity(&mut self) -> Result<char, SegbusError> {
        self.expect("&")?;
        for (name, ch) in [
            ("lt;", '<'),
            ("gt;", '>'),
            ("amp;", '&'),
            ("quot;", '"'),
            ("apos;", '\''),
        ] {
            if self.eat(name) {
                return Ok(ch);
            }
        }
        Err(self.err("unknown entity (only lt/gt/amp/quot/apos are supported)"))
    }

    fn element(&mut self) -> Result<XmlElement, SegbusError> {
        self.expect("<")?;
        let name = self.name()?;
        let mut el = XmlElement::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.attribute_value()?;
                    if el.attribute(&key).is_some() {
                        return Err(self.err(format!("duplicate attribute {key:?}")));
                    }
                    el.attributes.push((key, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content until the matching end tag.
        let mut text = String::new();
        loop {
            if self.starts_with("<!--") {
                flush_text(&mut el, &mut text);
                self.skip_ws_and_comments();
                continue;
            }
            if self.starts_with("</") {
                flush_text(&mut el, &mut text);
                self.expect("</")?;
                let end = self.name()?;
                if end != el.name {
                    return Err(self.err(format!(
                        "mismatched end tag: expected </{}>, found </{end}>",
                        el.name
                    )));
                }
                self.skip_ws();
                self.expect(">")?;
                return Ok(el);
            }
            match self.peek() {
                None => return Err(self.err(format!("unterminated element <{}>", el.name))),
                Some(b'<') => {
                    flush_text(&mut el, &mut text);
                    let child = self.element()?;
                    el.children.push(XmlNode::Element(child));
                }
                Some(b'&') => text.push(self.entity()?),
                Some(c) => {
                    self.bump();
                    text.push(c as char);
                }
            }
        }
    }
}

/// Character data is whitespace-insignificant in the SegBus schemes:
/// surrounding whitespace (including the writer's indentation) is dropped,
/// which keeps write → parse an identity on trimmed documents.
fn flush_text(el: &mut XmlElement, text: &mut String) {
    let trimmed = text.trim();
    if !trimmed.is_empty() {
        el.children.push(XmlNode::Text(trimmed.to_string()));
    }
    text.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declaration_and_nesting() {
        let doc = parse(
            r#"<?xml version="1.0" encoding="UTF-8"?>
            <xs:schema name="s">
              <xs:complexType name="P0">
                <xs:element name="P1_576_1_250"/>
              </xs:complexType>
            </xs:schema>"#,
        )
        .unwrap();
        assert!(doc.declaration);
        assert_eq!(doc.root.name, "xs:schema");
        let ct = doc.root.first_named("xs:complexType").unwrap();
        assert_eq!(ct.attribute("name"), Some("P0"));
        assert_eq!(
            ct.first_named("xs:element").unwrap().attribute("name"),
            Some("P1_576_1_250")
        );
    }

    #[test]
    fn parses_without_declaration() {
        let doc = parse("<a/>").unwrap();
        assert!(!doc.declaration);
        assert_eq!(doc.root.name, "a");
    }

    #[test]
    fn text_and_entities() {
        let doc = parse("<a>x &lt;&amp;&gt; y</a>").unwrap();
        assert_eq!(doc.root.text_content(), "x <&> y");
        let doc = parse(r#"<a k="&quot;v&apos;"/>"#).unwrap();
        assert_eq!(doc.root.attribute("k"), Some("\"v'"));
    }

    #[test]
    fn comments_are_skipped() {
        let doc = parse("<!-- head --><a><!-- mid --><b/><!-- tail --></a>").unwrap();
        assert_eq!(doc.root.elements().count(), 1);
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse("<a k='v'/>").unwrap();
        assert_eq!(doc.root.attribute("k"), Some("v"));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("<a>\n  <b>\n</a>").unwrap_err();
        assert_eq!(err.code, "X001");
        assert_eq!(err.span.unwrap().line, 3, "{err}");
        assert!(err.message.contains("mismatched end tag"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a></b>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a k=v/>").is_err());
        assert!(parse("<a k=\"1\" k=\"2\"/>").is_err());
        assert!(parse("<a>&unknown;</a>").is_err());
    }

    #[test]
    fn display_formats_position() {
        let err = parse("<a></b>").unwrap_err();
        let s = err.to_string();
        assert!(s.starts_with("error[X001] at 1:"), "{s}");
    }
}
