//! Robustness properties of the XML toolchain: the parser must never
//! panic, valid documents must round-trip, and the importer must reject
//! garbage gracefully.

use proptest::prelude::*;
use segbus_xml::{m2t, parse, XmlDocument, XmlElement};

/// Strategy: arbitrary (mostly hostile) byte soup rendered as a string.
fn arb_garbage() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("<".to_string()),
            Just(">".to_string()),
            Just("/".to_string()),
            Just("\"".to_string()),
            Just("&".to_string()),
            Just("=".to_string()),
            Just("xs:element".to_string()),
            Just(" ".to_string()),
            "[a-zA-Z0-9]{1,8}".prop_map(|s| s),
            Just("<!--".to_string()),
            Just("-->".to_string()),
            Just("<?xml".to_string()),
            Just("?>".to_string()),
        ],
        0..40,
    )
    .prop_map(|v| v.concat())
}

/// Strategy: a structurally valid random document.
fn arb_document() -> impl Strategy<Value = XmlDocument> {
    let name = "[a-zA-Z][a-zA-Z0-9_.:-]{0,10}";
    let attr_value = "[ -~&&[^<]]{0,12}"; // printable ASCII without '<'
    let leaf = (name, proptest::collection::vec((name, attr_value), 0..3)).prop_map(
        |(n, attrs)| {
            let mut e = XmlElement::new(n);
            for (k, v) in attrs {
                if e.attribute(&k).is_none() {
                    e = e.attr(k, v);
                }
            }
            e
        },
    );
    leaf.prop_recursive(3, 24, 4, move |inner| {
        (
            "[a-zA-Z][a-zA-Z0-9_.:-]{0,10}",
            proptest::collection::vec(inner, 0..4),
            proptest::option::of("[ -~&&[^<]]{1,16}"),
        )
            .prop_map(|(n, children, text)| {
                let mut e = XmlElement::new(n);
                for c in children {
                    e = e.child(c);
                }
                if let Some(t) = text {
                    if !t.trim().is_empty() {
                        e = e.text(t.trim().to_string());
                    }
                }
                e
            })
    })
    .prop_map(XmlDocument::new)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The parser returns Ok or Err but never panics, whatever the input.
    #[test]
    fn parser_never_panics(input in arb_garbage()) {
        let _ = parse(&input);
    }

    /// Arbitrary unicode also cannot crash the tokenizer.
    #[test]
    fn parser_survives_unicode(input in "\\PC{0,64}") {
        let _ = parse(&input);
    }

    /// Write → parse is the identity on structurally valid documents.
    #[test]
    fn write_parse_round_trip(doc in arb_document()) {
        let text = doc.to_xml_string();
        let back = parse(&text);
        prop_assert!(back.is_ok(), "serialised document failed to parse:\n{text}");
        prop_assert_eq!(back.unwrap(), doc);
    }

    /// The PSDF importer rejects random documents without panicking.
    #[test]
    fn importer_never_panics(doc in arb_document()) {
        let _ = segbus_xml::import::import_psdf(&doc);
    }
}

#[test]
fn m2t_output_always_reparses_for_generated_apps() {
    use segbus_apps::generators::{random_layered, GeneratorConfig};
    for seed in 0..20 {
        let app = random_layered(3, 3, seed, GeneratorConfig::default());
        let text = m2t::export_psdf(&app).to_xml_string();
        let doc = parse(&text).expect("generated scheme parses");
        let back = segbus_xml::import::import_psdf(&doc).expect("generated scheme imports");
        assert_eq!(back, app, "seed {seed}");
    }
}
