//! Robustness properties of the XML toolchain: the parser must never
//! panic, valid documents must round-trip, and the importer must reject
//! garbage gracefully. Inputs come from a seeded [`SmallRng`] fuzzer
//! (no external fuzzing dependency); every case is reproducible.

use segbus_model::rng::SmallRng;
use segbus_xml::{m2t, parse, XmlDocument, XmlElement};

/// Arbitrary (mostly hostile) token soup rendered as a string.
fn arb_garbage(rng: &mut SmallRng) -> String {
    const TOKENS: [&str; 13] = [
        "<",
        ">",
        "/",
        "\"",
        "&",
        "=",
        "xs:element",
        " ",
        "",
        "<!--",
        "-->",
        "<?xml",
        "?>",
    ];
    let n = rng.range_usize(0, 39);
    let mut out = String::new();
    for _ in 0..n {
        let pick = rng.range_usize(0, TOKENS.len());
        if pick == TOKENS.len() {
            // A short random alphanumeric word.
            for _ in 0..rng.range_usize(1, 8) {
                out.push(random_alnum(rng));
            }
        } else {
            out.push_str(TOKENS[pick]);
        }
    }
    out
}

fn random_alnum(rng: &mut SmallRng) -> char {
    const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    ALNUM[rng.range_usize(0, ALNUM.len() - 1)] as char
}

/// A plausible XML name: `[a-zA-Z][a-zA-Z0-9_.:-]{0,10}`.
fn random_name(rng: &mut SmallRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:-";
    let mut s = String::new();
    s.push(FIRST[rng.range_usize(0, FIRST.len() - 1)] as char);
    for _ in 0..rng.range_usize(0, 10) {
        s.push(REST[rng.range_usize(0, REST.len() - 1)] as char);
    }
    s
}

/// Printable ASCII without `<`, up to `max` characters.
fn random_text(rng: &mut SmallRng, max: usize) -> String {
    let mut s = String::new();
    for _ in 0..rng.range_usize(0, max) {
        let c = (0x20 + rng.below(0x5f) as u8) as char; // ' '..='~'
        if c != '<' {
            s.push(c);
        }
    }
    s
}

/// A structurally valid random document (recursive, depth-limited).
fn arb_element(rng: &mut SmallRng, depth: usize) -> XmlElement {
    let mut e = XmlElement::new(random_name(rng));
    for _ in 0..rng.range_usize(0, 2) {
        let k = random_name(rng);
        if e.attribute(&k).is_none() {
            e = e.attr(k, random_text(rng, 12));
        }
    }
    if depth > 0 {
        for _ in 0..rng.range_usize(0, 3) {
            e = e.child(arb_element(rng, depth - 1));
        }
    }
    if rng.gen_bool(0.4) {
        let t = random_text(rng, 16);
        if !t.trim().is_empty() {
            e = e.text(t.trim().to_string());
        }
    }
    e
}

fn arb_document(rng: &mut SmallRng) -> XmlDocument {
    XmlDocument::new(arb_element(rng, 3))
}

/// The parser returns Ok or Err but never panics, whatever the input.
#[test]
fn parser_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0xF_0001);
    for _ in 0..256 {
        let input = arb_garbage(&mut rng);
        let _ = parse(&input);
    }
}

/// Arbitrary unicode also cannot crash the tokenizer.
#[test]
fn parser_survives_unicode() {
    let mut rng = SmallRng::seed_from_u64(0xF_0002);
    for _ in 0..256 {
        let mut input = String::new();
        for _ in 0..rng.range_usize(0, 64) {
            // Any valid scalar value, surrogate range excluded by from_u32.
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                input.push(c);
            }
        }
        let _ = parse(&input);
    }
}

/// Write → parse is the identity on structurally valid documents.
#[test]
fn write_parse_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0xF_0003);
    for case in 0..256 {
        let doc = arb_document(&mut rng);
        let text = doc.to_xml_string();
        let back = parse(&text);
        assert!(
            back.is_ok(),
            "case {case}: serialised document failed to parse:\n{text}"
        );
        assert_eq!(back.unwrap(), doc, "case {case}");
    }
}

/// The PSDF importer rejects random documents without panicking.
#[test]
fn importer_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0xF_0004);
    for _ in 0..256 {
        let doc = arb_document(&mut rng);
        let _ = segbus_xml::import::import_psdf(&doc);
    }
}

#[test]
fn m2t_output_always_reparses_for_generated_apps() {
    use segbus_apps::generators::{random_layered, GeneratorConfig};
    for seed in 0..20 {
        let app = random_layered(3, 3, seed, GeneratorConfig::default());
        let text = m2t::export_psdf(&app).to_xml_string();
        let doc = parse(&text).expect("generated scheme parses");
        let back = segbus_xml::import::import_psdf(&doc).expect("generated scheme imports");
        assert_eq!(back, app, "seed {seed}");
    }
}
