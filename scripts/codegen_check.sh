#!/usr/bin/env bash
# Emitted-code rot guard: run the Rust schedule emitter on the committed
# mp3 example model and compile-check the result as a standalone,
# dependency-free library. The emitted module ships const tables plus the
# SaStepper replay function; if either stops being valid Rust this fails.
#
#   scripts/codegen_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== codegen check: emit models/mp3_three_segments.sbd as Rust =="
cargo run --release -q -p segbus -- codegen models/mp3_three_segments.sbd \
    --format rust >"$tmp/schedule.rs"

echo "== codegen check: rustc --edition 2021 --crate-type lib =="
rustc --edition 2021 --crate-type lib -D warnings \
    --out-dir "$tmp" "$tmp/schedule.rs"

echo "codegen check: OK"
