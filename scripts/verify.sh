#!/usr/bin/env bash
# Tier-1 verification: the repo must build and test clean, fully offline.
#
#   scripts/verify.sh          # build (offline) + release build + full test suite
#
# The --offline build is the dependency-trim guard: the workspace must
# compile with no registry access and no vendored third-party crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --offline =="
cargo build --offline

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --workspace =="
cargo test --workspace -q

echo "== fuzz smoke (10k inputs) =="
cargo test --release -q --test fuzz_differential -- --ignored

echo "verify: OK"
