#!/usr/bin/env bash
# CI performance gate: re-run the committed throughput benchmarks and
# compare each `runs_per_sec` against its committed baseline. Fails if
# throughput regressed by more than the threshold (default 20%, i.e.
# new < 0.80 × committed).
#
#   scripts/bench_gate.sh                 # gate P1 (engine) + P5 (placement)
#   BENCH_GATE_THRESHOLD=0.5 scripts/bench_gate.sh   # looser gate
#
# Gated benchmarks:
#   exp_perf       -> BENCH_engine.json   P1 engine throughput
#   exp_place_perf -> BENCH_place.json    P5 parallel placement search
#
# The committed baselines are restored afterwards, so the gate never
# dirties the working tree — machine-to-machine absolute numbers vary;
# the files are only refreshed deliberately, together with engine or
# search changes.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${BENCH_GATE_THRESHOLD:-0.80}"
fails=0

json_field() {
    # json_field <file> <key> — the benches write one "key": value per line.
    awk -F: -v key="\"$2\"" '$1 ~ key { gsub(/[ ,]/, "", $2); print $2 }' "$1"
}

# gate <baseline.json> <bin> <title>
gate() {
    local baseline="$1" bin="$2" title="$3"

    if [[ ! -f "$baseline" ]]; then
        echo "bench gate: no committed $baseline baseline" >&2
        return 1
    fi
    local old_rps
    old_rps=$(json_field "$baseline" runs_per_sec)
    if [[ -z "$old_rps" ]]; then
        echo "bench gate: cannot read runs_per_sec from $baseline" >&2
        return 1
    fi

    # The bench overwrites its baseline in the cwd; park the committed
    # copy and restore it on every exit path.
    local saved
    saved=$(mktemp)
    cp "$baseline" "$saved"

    # Run the benchmark three times and gate on the median, so a single
    # noisy scheduler hiccup (either direction) cannot flip the verdict
    # near the threshold.
    echo "== bench gate: cargo run --release -p segbus-report --bin $bin (median of 3) =="
    local runs=() rps i
    for i in 1 2 3; do
        if ! cargo run --release -q -p segbus-report --bin "$bin"; then
            cp "$saved" "$baseline"; rm -f "$saved"
            echo "bench gate: $bin run $i failed" >&2
            return 1
        fi
        rps=$(json_field "$baseline" runs_per_sec)
        if [[ -z "$rps" ]]; then
            cp "$saved" "$baseline"; rm -f "$saved"
            echo "bench gate: $bin run $i produced no runs_per_sec" >&2
            return 1
        fi
        echo "bench gate: run $i -> ${rps} runs/s"
        runs+=("$rps")
    done
    cp "$saved" "$baseline"; rm -f "$saved"
    local new_rps
    new_rps=$(printf '%s\n' "${runs[@]}" | sort -g | sed -n 2p)

    local verdict ok
    verdict=$(awk -v new="$new_rps" -v old="$old_rps" -v thr="$THRESHOLD" 'BEGIN {
        ratio = new / old
        printf "ratio %.3f (threshold %.2f)\n", ratio, thr
        exit (ratio < thr) ? 1 : 0
    }') && ok=1 || ok=0

    echo "bench gate [$title]: committed ${old_rps} runs/s, median of 3 runs ${new_rps} runs/s — ${verdict}"
    if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
        {
            echo "### $title gate"
            echo ""
            echo "| | runs/s |"
            echo "|---|---|"
            echo "| committed baseline | ${old_rps} |"
            echo "| median of 3 runs | ${new_rps} |"
            echo ""
            echo "${verdict}"
        } >>"$GITHUB_STEP_SUMMARY"
    fi

    if [[ "$ok" -ne 1 ]]; then
        echo "bench gate [$title]: FAIL — throughput regressed more than $(awk -v t="$THRESHOLD" 'BEGIN { printf "%.0f%%", (1-t)*100 }')" >&2
        return 1
    fi
    echo "bench gate [$title]: OK"
}

gate BENCH_engine.json exp_perf "Engine throughput" || fails=1
gate BENCH_place.json exp_place_perf "Placement search throughput" || fails=1

if [[ "$fails" -ne 0 ]]; then
    echo "bench gate: FAIL" >&2
    exit 1
fi
echo "bench gate: all OK"
