#!/usr/bin/env bash
# CI performance gate: re-run the committed throughput benchmarks and
# compare each gated field against its committed baseline. Fails if
# throughput regressed by more than the tolerance (default 20%, i.e.
# new < 0.80 × committed).
#
#   scripts/bench_gate.sh                 # gate P1 (engine) + P5 (placement)
#   BENCH_GATE_TOLERANCE=0.5 scripts/bench_gate.sh   # looser gate
#   BENCH_GATE_COUNTER=instructions scripts/bench_gate.sh
#                                         # opt-in: gate on retired
#                                         # instructions instead of wall
#                                         # clock (see below)
#
# Gated benchmarks:
#   exp_perf       -> BENCH_engine.json   P1 engine throughput
#                     (interpreter `runs_per_sec` + fast-core
#                      `fast_runs_per_sec`)
#   exp_place_perf -> BENCH_place.json    P5 parallel placement search
#                     (`runs_per_sec`, plus the P10 incremental-portfolio
#                      leg: `place_moves_per_sec` throughput on the
#                      120-process grid and `grid_speedup`, the ratio of
#                      the full-rebuild path over incremental evaluation
#                      on the identical trajectory)
#   exp_serve_perf -> BENCH_serve.json    P6 serve-tier throughput + p99
#
# Each benchmark runs five times and every field is gated on its
# best-of-5: the gate asks "can this machine still reach the committed
# throughput", and scheduler hiccups only ever subtract — the best
# observation is the least noisy estimate of the machine's capability,
# so a single slow run (or three) cannot flip the verdict.
#
# Keys are higher-is-better by default; a "max:" prefix (e.g.
# max:serve_p99_us) marks a lower-is-better field: the best observation
# is the *minimum* across rounds, and the gate fails when it exceeds
# committed / tolerance.
#
# Counter mode (BENCH_GATE_COUNTER=instructions): each benchmark run is
# wrapped in `perf stat -e instructions` and the gate *additionally*
# compares the best-of-5 (minimum) instruction count against the
# committed `<bin>_instructions` field of BENCH_counters.json, when that
# file exists — instruction counts are near-deterministic, so this is
# the noise-immune absolute budget shared runners cannot give you on
# wall clock. Without a committed baseline the counts are report-only
# (printed so they can be committed). When `perf` is missing or
# unusable (containers without perf_event access), the script says so
# and falls back to the ordinary wall-clock gate.
#
# The committed baselines are restored afterwards — also on ctrl-C or a
# runner kill: every parked baseline is restored by an EXIT/INT/TERM
# trap, so an interrupted run can never leave an overwritten
# BENCH_*.json behind. Machine-to-machine absolute numbers vary; the
# files are only refreshed deliberately, together with engine or search
# changes.
set -euo pipefail
cd "$(dirname "$0")/.."

# BENCH_GATE_THRESHOLD is the historical name, kept as a fallback.
TOLERANCE="${BENCH_GATE_TOLERANCE:-${BENCH_GATE_THRESHOLD:-0.80}}"
ROUNDS=5
fails=0

# -- baseline parking ---------------------------------------------------------
# park/restore_one bracket the rounds of one gate; the trap is the safety
# net that restores whatever is still parked when the script dies mid-run.
PARKED=()
restore_parked() {
    local pair
    [[ ${#PARKED[@]} -gt 0 ]] || return 0
    for pair in "${PARKED[@]}"; do
        cp "${pair#*$'\t'}" "${pair%%$'\t'*}" 2>/dev/null || true
        rm -f "${pair#*$'\t'}"
    done
    PARKED=()
}
# INT/TERM must *exit* (which fires the EXIT trap and restores) rather
# than restore inline: a trap that returns would resume the rounds loop
# with the parking registry already cleared, and the next bench run
# would overwrite the baseline for good.
trap restore_parked EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

park() {
    local saved
    saved=$(mktemp)
    cp "$1" "$saved"
    PARKED+=("$1"$'\t'"$saved")
}

restore_one() {
    local pair rest=()
    [[ ${#PARKED[@]} -gt 0 ]] || return 0
    for pair in "${PARKED[@]}"; do
        if [[ "${pair%%$'\t'*}" == "$1" ]]; then
            cp "${pair#*$'\t'}" "$1"
            rm -f "${pair#*$'\t'}"
        else
            rest+=("$pair")
        fi
    done
    PARKED=("${rest[@]+"${rest[@]}"}")
}

# -- counter mode -------------------------------------------------------------
COUNTER="${BENCH_GATE_COUNTER:-}"
PERF=""
if [[ "$COUNTER" == "instructions" ]]; then
    if command -v perf >/dev/null 2>&1 &&
        perf stat -e instructions -- true >/dev/null 2>&1; then
        PERF=1
        echo "bench gate: counter mode — gating on retired instructions (perf stat)"
    else
        echo "bench gate: BENCH_GATE_COUNTER=instructions but perf stat is" \
            "unavailable here — falling back to the wall-clock gate" >&2
    fi
elif [[ -n "$COUNTER" ]]; then
    echo "bench gate: unknown BENCH_GATE_COUNTER \"$COUNTER\" (supported: instructions)" >&2
    exit 1
fi

COUNTS_FILE=""

# run_bench <bin> — one benchmark run; in counter mode the run is wrapped
# in perf stat and its instruction count appended to $COUNTS_FILE.
run_bench() {
    local bin="$1"
    if [[ -n "$PERF" ]]; then
        local out
        out=$(mktemp)
        if ! perf stat -x, -e instructions -o "$out" -- \
            cargo run --release -q -p segbus-report --bin "$bin"; then
            rm -f "$out"
            return 1
        fi
        # Field 3 is the event name — "instructions:u" when unprivileged.
        awk -F, '$3 ~ /^instructions/ && $1 ~ /^[0-9]+$/ { print $1 }' "$out" >>"$COUNTS_FILE"
        rm -f "$out"
    else
        cargo run --release -q -p segbus-report --bin "$bin"
    fi
}

json_field() {
    # json_field <file> <key> — the benches write one "key": value per line.
    awk -F: -v key="\"$2\"" '$1 ~ key { gsub(/[ ,]/, "", $2); print $2 }' "$1"
}

# gate <baseline.json> <bin> <title> <key> [<key>...]
gate() {
    local baseline="$1" bin="$2" title="$3"
    shift 3
    local keys=("$@")

    if [[ ! -f "$baseline" ]]; then
        echo "bench gate: no committed $baseline baseline" >&2
        return 1
    fi
    # Strip the direction prefix: fields[k] is the JSON key, lower[k]=1
    # marks a lower-is-better ("max:") gate.
    local fields=() lower=() key
    for key in "${keys[@]}"; do
        if [[ "$key" == max:* ]]; then
            fields+=("${key#max:}")
            lower+=(1)
        else
            fields+=("$key")
            lower+=(0)
        fi
    done

    local old=()
    for key in "${fields[@]}"; do
        local v
        v=$(json_field "$baseline" "$key")
        if [[ -z "$v" ]]; then
            echo "bench gate: cannot read $key from $baseline" >&2
            return 1
        fi
        old+=("$v")
    done

    # The bench overwrites its baseline in the cwd; park the committed
    # copy — restore_one puts it back below, the trap covers interrupts.
    park "$baseline"
    COUNTS_FILE=$(mktemp)

    if [[ -n "$PERF" ]]; then
        # Pre-build so round 1's instruction count measures the bench,
        # not rustc.
        cargo build --release -q -p segbus-report --bin "$bin"
    fi

    echo "== bench gate: cargo run --release -p segbus-report --bin $bin (best of $ROUNDS) =="
    local best=() i k v
    for ((k = 0; k < ${#keys[@]}; k++)); do
        best+=("")
    done
    for ((i = 1; i <= ROUNDS; i++)); do
        if ! run_bench "$bin"; then
            restore_one "$baseline"
            rm -f "$COUNTS_FILE"
            echo "bench gate: $bin run $i failed" >&2
            return 1
        fi
        local line="bench gate: run $i ->"
        for ((k = 0; k < ${#keys[@]}; k++)); do
            v=$(json_field "$baseline" "${fields[$k]}")
            if [[ -z "$v" ]]; then
                restore_one "$baseline"
                rm -f "$COUNTS_FILE"
                echo "bench gate: $bin run $i produced no ${fields[$k]}" >&2
                return 1
            fi
            line+=" ${fields[$k]} ${v}"
            # Best across rounds: max normally, min for "max:" fields.
            if [[ -z "${best[$k]}" ]] ||
                awk -v a="$v" -v b="${best[$k]}" -v lo="${lower[$k]}" \
                    'BEGIN { exit !(lo ? (a < b) : (a > b)) }'; then
                best[$k]="$v"
            fi
        done
        echo "$line"
    done
    restore_one "$baseline"

    local ok=1 summary=""
    for ((k = 0; k < ${#keys[@]}; k++)); do
        local verdict field_ok
        # Higher-is-better gates on new/old; lower-is-better ("max:")
        # inverts the ratio so the same tolerance applies.
        verdict=$(awk -v new="${best[$k]}" -v old="${old[$k]}" \
            -v tol="$TOLERANCE" -v lo="${lower[$k]}" 'BEGIN {
            ratio = lo ? old / new : new / old
            printf "ratio %.3f (tolerance %.2f)\n", ratio, tol
            exit (ratio < tol) ? 1 : 0
        }') && field_ok=1 || field_ok=0
        echo "bench gate [$title/${fields[$k]}]: committed ${old[$k]}, best of $ROUNDS ${best[$k]} — ${verdict}"
        summary+="| ${fields[$k]} | ${old[$k]} | ${best[$k]} | ${verdict%$'\n'} |"$'\n'
        if [[ "$field_ok" -ne 1 ]]; then
            ok=0
        fi
    done

    # Counter verdict: minimum instruction count across the rounds vs the
    # committed budget (lower is better), report-only without a baseline.
    if [[ -n "$PERF" ]]; then
        local insn
        insn=$(sort -n "$COUNTS_FILE" | head -n 1)
        if [[ -n "$insn" ]]; then
            local budget=""
            [[ -f BENCH_counters.json ]] && budget=$(json_field BENCH_counters.json "${bin}_instructions")
            if [[ -n "$budget" ]]; then
                local cverdict cok
                cverdict=$(awk -v new="$insn" -v old="$budget" -v tol="$TOLERANCE" 'BEGIN {
                    ratio = old / new
                    printf "ratio %.3f (tolerance %.2f)\n", ratio, tol
                    exit (ratio < tol) ? 1 : 0
                }') && cok=1 || cok=0
                echo "bench gate [$title/instructions]: committed $budget, best of $ROUNDS $insn — ${cverdict}"
                summary+="| instructions | $budget | $insn | ${cverdict%$'\n'} |"$'\n'
                if [[ "$cok" -ne 1 ]]; then
                    ok=0
                fi
            else
                echo "bench gate [$title/instructions]: best of $ROUNDS $insn (no ${bin}_instructions budget in BENCH_counters.json — report only)"
            fi
        fi
    fi
    rm -f "$COUNTS_FILE"

    if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
        {
            echo "### $title gate"
            echo ""
            echo "| field | committed | best of $ROUNDS | verdict |"
            echo "|---|---|---|---|"
            printf '%s' "$summary"
            echo ""
        } >>"$GITHUB_STEP_SUMMARY"
    fi

    if [[ "$ok" -ne 1 ]]; then
        echo "bench gate [$title]: FAIL — regressed more than $(awk -v t="$TOLERANCE" 'BEGIN { printf "%.0f%%", (1-t)*100 }')" >&2
        return 1
    fi
    echo "bench gate [$title]: OK"
}

gate BENCH_engine.json exp_perf "Engine throughput" runs_per_sec fast_runs_per_sec || fails=1
gate BENCH_place.json exp_place_perf "Placement search throughput" \
    runs_per_sec place_moves_per_sec grid_speedup || fails=1
gate BENCH_serve.json exp_serve_perf "Serve tier throughput" serve_reqs_per_sec max:serve_p99_us || fails=1

if [[ "$fails" -ne 0 ]]; then
    echo "bench gate: FAIL" >&2
    exit 1
fi
echo "bench gate: all OK"
