#!/usr/bin/env bash
# CI performance gate: re-run the committed throughput benchmarks and
# compare each gated field against its committed baseline. Fails if
# throughput regressed by more than the tolerance (default 20%, i.e.
# new < 0.80 × committed).
#
#   scripts/bench_gate.sh                 # gate P1 (engine) + P5 (placement)
#   BENCH_GATE_TOLERANCE=0.5 scripts/bench_gate.sh   # looser gate
#
# Gated benchmarks:
#   exp_perf       -> BENCH_engine.json   P1 engine throughput
#                     (interpreter `runs_per_sec` + fast-core
#                      `fast_runs_per_sec`)
#   exp_place_perf -> BENCH_place.json    P5 parallel placement search
#   exp_serve_perf -> BENCH_serve.json    P6 serve-tier throughput + p99
#
# Each benchmark runs five times and every field is gated on its
# best-of-5: the gate asks "can this machine still reach the committed
# throughput", and scheduler hiccups only ever subtract — the best
# observation is the least noisy estimate of the machine's capability,
# so a single slow run (or three) cannot flip the verdict.
#
# Keys are higher-is-better by default; a "max:" prefix (e.g.
# max:serve_p99_us) marks a lower-is-better field: the best observation
# is the *minimum* across rounds, and the gate fails when it exceeds
# committed / tolerance.
#
# The committed baselines are restored afterwards, so the gate never
# dirties the working tree — machine-to-machine absolute numbers vary;
# the files are only refreshed deliberately, together with engine or
# search changes.
set -euo pipefail
cd "$(dirname "$0")/.."

# BENCH_GATE_THRESHOLD is the historical name, kept as a fallback.
TOLERANCE="${BENCH_GATE_TOLERANCE:-${BENCH_GATE_THRESHOLD:-0.80}}"
ROUNDS=5
fails=0

json_field() {
    # json_field <file> <key> — the benches write one "key": value per line.
    awk -F: -v key="\"$2\"" '$1 ~ key { gsub(/[ ,]/, "", $2); print $2 }' "$1"
}

# gate <baseline.json> <bin> <title> <key> [<key>...]
gate() {
    local baseline="$1" bin="$2" title="$3"
    shift 3
    local keys=("$@")

    if [[ ! -f "$baseline" ]]; then
        echo "bench gate: no committed $baseline baseline" >&2
        return 1
    fi
    # Strip the direction prefix: fields[k] is the JSON key, lower[k]=1
    # marks a lower-is-better ("max:") gate.
    local fields=() lower=() key
    for key in "${keys[@]}"; do
        if [[ "$key" == max:* ]]; then
            fields+=("${key#max:}")
            lower+=(1)
        else
            fields+=("$key")
            lower+=(0)
        fi
    done

    local old=()
    for key in "${fields[@]}"; do
        local v
        v=$(json_field "$baseline" "$key")
        if [[ -z "$v" ]]; then
            echo "bench gate: cannot read $key from $baseline" >&2
            return 1
        fi
        old+=("$v")
    done

    # The bench overwrites its baseline in the cwd; park the committed
    # copy and restore it on every exit path.
    local saved
    saved=$(mktemp)
    cp "$baseline" "$saved"

    echo "== bench gate: cargo run --release -p segbus-report --bin $bin (best of $ROUNDS) =="
    local best=() i k v
    for ((k = 0; k < ${#keys[@]}; k++)); do
        best+=("")
    done
    for ((i = 1; i <= ROUNDS; i++)); do
        if ! cargo run --release -q -p segbus-report --bin "$bin"; then
            cp "$saved" "$baseline"; rm -f "$saved"
            echo "bench gate: $bin run $i failed" >&2
            return 1
        fi
        local line="bench gate: run $i ->"
        for ((k = 0; k < ${#keys[@]}; k++)); do
            v=$(json_field "$baseline" "${fields[$k]}")
            if [[ -z "$v" ]]; then
                cp "$saved" "$baseline"; rm -f "$saved"
                echo "bench gate: $bin run $i produced no ${fields[$k]}" >&2
                return 1
            fi
            line+=" ${fields[$k]} ${v}"
            # Best across rounds: max normally, min for "max:" fields.
            if [[ -z "${best[$k]}" ]] ||
                awk -v a="$v" -v b="${best[$k]}" -v lo="${lower[$k]}" \
                    'BEGIN { exit !(lo ? (a < b) : (a > b)) }'; then
                best[$k]="$v"
            fi
        done
        echo "$line"
    done
    cp "$saved" "$baseline"; rm -f "$saved"

    local ok=1 summary=""
    for ((k = 0; k < ${#keys[@]}; k++)); do
        local verdict field_ok
        # Higher-is-better gates on new/old; lower-is-better ("max:")
        # inverts the ratio so the same tolerance applies.
        verdict=$(awk -v new="${best[$k]}" -v old="${old[$k]}" \
                      -v tol="$TOLERANCE" -v lo="${lower[$k]}" 'BEGIN {
            ratio = lo ? old / new : new / old
            printf "ratio %.3f (tolerance %.2f)\n", ratio, tol
            exit (ratio < tol) ? 1 : 0
        }') && field_ok=1 || field_ok=0
        echo "bench gate [$title/${fields[$k]}]: committed ${old[$k]}, best of $ROUNDS ${best[$k]} — ${verdict}"
        summary+="| ${fields[$k]} | ${old[$k]} | ${best[$k]} | ${verdict%$'\n'} |"$'\n'
        if [[ "$field_ok" -ne 1 ]]; then
            ok=0
        fi
    done
    if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
        {
            echo "### $title gate"
            echo ""
            echo "| field | committed | best of $ROUNDS | verdict |"
            echo "|---|---|---|---|"
            printf '%s' "$summary"
            echo ""
        } >>"$GITHUB_STEP_SUMMARY"
    fi

    if [[ "$ok" -ne 1 ]]; then
        echo "bench gate [$title]: FAIL — throughput regressed more than $(awk -v t="$TOLERANCE" 'BEGIN { printf "%.0f%%", (1-t)*100 }')" >&2
        return 1
    fi
    echo "bench gate [$title]: OK"
}

gate BENCH_engine.json exp_perf "Engine throughput" runs_per_sec fast_runs_per_sec || fails=1
gate BENCH_place.json exp_place_perf "Placement search throughput" runs_per_sec || fails=1
gate BENCH_serve.json exp_serve_perf "Serve tier throughput" serve_reqs_per_sec max:serve_p99_us || fails=1

if [[ "$fails" -ne 0 ]]; then
    echo "bench gate: FAIL" >&2
    exit 1
fi
echo "bench gate: all OK"
