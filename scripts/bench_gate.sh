#!/usr/bin/env bash
# CI performance gate: re-run the P1 engine-throughput benchmark and
# compare its `runs_per_sec` against the committed `BENCH_engine.json`
# baseline. Fails if throughput regressed by more than the threshold
# (default 20%, i.e. new < 0.80 × committed).
#
#   scripts/bench_gate.sh                 # gate against BENCH_engine.json
#   BENCH_GATE_THRESHOLD=0.5 scripts/bench_gate.sh   # looser gate
#
# The committed baseline is restored afterwards, so the gate never dirties
# the working tree — machine-to-machine absolute numbers vary; the file is
# only refreshed deliberately, together with engine changes.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_engine.json
THRESHOLD="${BENCH_GATE_THRESHOLD:-0.80}"

if [[ ! -f "$BASELINE" ]]; then
    echo "bench gate: no committed $BASELINE baseline" >&2
    exit 1
fi

json_field() {
    # json_field <file> <key> — exp_perf writes one "key": value per line.
    awk -F: -v key="\"$2\"" '$1 ~ key { gsub(/[ ,]/, "", $2); print $2 }' "$1"
}

old_rps=$(json_field "$BASELINE" runs_per_sec)
if [[ -z "$old_rps" ]]; then
    echo "bench gate: cannot read runs_per_sec from $BASELINE" >&2
    exit 1
fi

# exp_perf overwrites BENCH_engine.json in the cwd; park the committed
# baseline and restore it on every exit path.
saved=$(mktemp)
cp "$BASELINE" "$saved"
restore() { cp "$saved" "$BASELINE"; rm -f "$saved"; }
trap restore EXIT

# Run the benchmark three times and gate on the median, so a single noisy
# scheduler hiccup (either direction) cannot flip the verdict near the
# threshold.
echo "== bench gate: cargo run --release -p segbus-report --bin exp_perf (median of 3) =="
runs=()
for i in 1 2 3; do
    cargo run --release -q -p segbus-report --bin exp_perf
    rps=$(json_field "$BASELINE" runs_per_sec)
    if [[ -z "$rps" ]]; then
        echo "bench gate: benchmark run $i produced no runs_per_sec" >&2
        exit 1
    fi
    echo "bench gate: run $i -> ${rps} runs/s"
    runs+=("$rps")
done
new_rps=$(printf '%s\n' "${runs[@]}" | sort -g | sed -n 2p)

verdict=$(awk -v new="$new_rps" -v old="$old_rps" -v thr="$THRESHOLD" 'BEGIN {
    ratio = new / old
    printf "ratio %.3f (threshold %.2f)\n", ratio, thr
    exit (ratio < thr) ? 1 : 0
}') && ok=1 || ok=0

summary="bench gate: committed ${old_rps} runs/s, median of 3 runs ${new_rps} runs/s — ${verdict}"
echo "$summary"
if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
    {
        echo "### Engine throughput gate"
        echo ""
        echo "| | runs/s |"
        echo "|---|---|"
        echo "| committed baseline | ${old_rps} |"
        echo "| median of 3 runs | ${new_rps} |"
        echo ""
        echo "${verdict}"
    } >>"$GITHUB_STEP_SUMMARY"
fi

if [[ "$ok" -ne 1 ]]; then
    echo "bench gate: FAIL — throughput regressed more than $(awk -v t="$THRESHOLD" 'BEGIN { printf "%.0f%%", (1-t)*100 }')" >&2
    exit 1
fi
echo "bench gate: OK"
