//! The complete design flow of the paper's Fig. 3, in one program:
//!
//! 1. author the system in the (textual) DSL;
//! 2. validate it against the platform's structural constraints;
//! 3. run the Model-to-Text transformation to the PSDF and PSM XML schemes;
//! 4. parse the schemes back, the way the emulator's setup phase does;
//! 5. emulate and report.
//!
//! ```text
//! cargo run --example design_flow
//! ```

use segbus::dsl;
use segbus::emu::Emulator;
use segbus::xml::{import, m2t, parse};

const SOURCE: &str = r#"
// A stereo effects box: split -> per-channel filter chain -> merge.
application effects {
    cost affine base 40 reference 36;
    process SPLIT initial;
    process EQ_L;
    process EQ_R;
    process REVERB_L;
    process REVERB_R;
    process MERGE final;
    flow SPLIT -> EQ_L     { items 720; order 1; ticks 180; }
    flow SPLIT -> EQ_R     { items 720; order 1; ticks 180; }
    flow EQ_L -> REVERB_L  { items 720; order 2; ticks 240; }
    flow EQ_R -> REVERB_R  { items 720; order 2; ticks 240; }
    flow REVERB_L -> MERGE { items 720; order 3; ticks 150; }
    flow REVERB_R -> MERGE { items 720; order 3; ticks 150; }
}

platform stereo_box {
    package_size 36;
    ca { freq_mhz 111; }
    segment Left  { freq_mhz 95; hosts SPLIT EQ_L REVERB_L; }
    segment Right { freq_mhz 95; hosts MERGE EQ_R REVERB_R; }
}
"#;

fn main() {
    // (1) + (2): parse and validate. A DSL or constraint error would
    // surface here with a line/column position.
    let psm = dsl::parse_system(SOURCE).expect("DSL parses and validates");
    println!(
        "parsed '{}' on '{}' ({} processes, {} flows, {} segments)\n",
        psm.application().name(),
        psm.platform().name(),
        psm.application().process_count(),
        psm.application().flows().len(),
        psm.platform().segment_count()
    );

    // (3) M2T: generate the XML schemes the paper's tool produces.
    let psdf_xml = m2t::export_psdf(psm.application()).to_xml_string();
    let psm_xml = m2t::export_psm(&psm).to_xml_string();
    println!("--- PSDF scheme (excerpt) ---");
    for line in psdf_xml.lines().take(8) {
        println!("{line}");
    }
    println!("...\n");

    // (4) Emulator setup: parse the schemes back into a validated system.
    let psdf_doc = parse(&psdf_xml).expect("generated XML parses");
    let psm_doc = parse(&psm_xml).expect("generated XML parses");
    let system = import::import_system(&psdf_doc, &psm_doc).expect("schemes import");
    assert_eq!(
        system.application(),
        psm.application(),
        "round trip is lossless"
    );

    // (5) Emulate.
    let report = Emulator::default().run(&system);
    println!("--- emulation of the imported system ---");
    println!(
        "estimated execution time: {:.2} us",
        report.execution_time().as_micros_f64()
    );
    println!(
        "inter-segment packages:   {}",
        report.inter_segment_packages()
    );
    println!("communication matrix:\n{}", system.matrix().to_table());
}
