//! Early design-space exploration, the paper's motivating use case: decide
//! which platform configuration suits the application *before* committing
//! to implementation. PlaceTool proposes allocations for 2–4 segments; the
//! emulator scores each; the report ranks them.
//!
//! ```text
//! cargo run --release --example placement_exploration
//! ```

use segbus::apps::generators::{random_layered, GeneratorConfig};
use segbus::emu::Emulator;
use segbus::model::prelude::*;
use segbus::place::{Objective, PlaceTool};

fn main() {
    // A synthetic 18-process streaming application (seeded, reproducible).
    let app = random_layered(
        6,
        3,
        2026,
        GeneratorConfig {
            items_per_flow: 8 * 36,
            ticks_per_package: 220,
        },
    );
    println!(
        "application '{}': {} processes, {} flows, {} items total\n",
        app.name(),
        app.process_count(),
        app.flows().len(),
        app.total_items()
    );

    let emulator = Emulator::default();
    let mut results: Vec<(usize, u64, f64)> = Vec::new();

    for segments in 2..=4 {
        // PlaceTool: minimise package traffic across the border units.
        let placement = PlaceTool::new(&app, segments)
            .with_objective(Objective::Packages(36))
            .best(7);

        // Score the proposal on a platform with per-segment clocks.
        let mut builder = Platform::builder(format!("explore-{segments}seg"))
            .package_size(36)
            .ca_clock(ClockDomain::from_mhz(111.0));
        for i in 0..segments {
            builder = builder.segment(
                format!("S{}", i + 1),
                ClockDomain::from_mhz(90.0 + 3.0 * i as f64),
            );
        }
        let platform = builder.build().expect("valid platform");
        let psm = Psm::new(platform, app.clone(), placement.allocation.clone())
            .expect("PlaceTool output validates");
        let report = emulator.run(&psm);
        println!(
            "{segments} segments: package cut {:4}, estimated {:.2} us, CA grants {}",
            placement.cost,
            report.execution_time().as_micros_f64(),
            report.ca.grants
        );
        results.push((
            segments,
            placement.cost,
            report.execution_time().as_micros_f64(),
        ));
    }

    let best = results
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("at least one configuration");
    println!(
        "\nrecommended configuration: {} segments ({:.2} us estimated)",
        best.0, best.2
    );
}
