//! Streaming decode: pipeline successive MP3 frames through the platform
//! and watch throughput converge to the bottleneck stage — the metric the
//! paper's single-frame experiment abstracts away.
//!
//! ```text
//! cargo run --release --example streaming_decoder
//! ```

use segbus::apps::mp3;
use segbus::emu::Emulator;

fn main() {
    let psm = mp3::three_segment_psm();
    let emulator = Emulator::default();

    println!("streaming MP3 decode on the 3-segment platform (Fig. 9)\n");
    println!(
        "{:>7} {:>13} {:>14} {:>10} {:>12}",
        "frames", "makespan_us", "us_per_frame", "frames_ms", "speedup"
    );

    let t1 = emulator.run(&psm).makespan.0 as f64;
    let mut prev = 0.0f64;
    for frames in [1u64, 2, 4, 8, 16, 32] {
        let report = emulator.run_frames(&psm, frames);
        assert!(report.all_flags_raised());
        let tn = report.makespan.0 as f64;
        let per_frame = tn / frames as f64;
        println!(
            "{frames:>7} {:>13.2} {:>14.2} {:>10.3} {:>11.2}x",
            tn / 1e6,
            per_frame / 1e6,
            1e9 / per_frame, // frames per millisecond
            frames as f64 * t1 / tn
        );
        prev = per_frame;
    }
    println!(
        "\nsteady-state frame period: {:.2} us (single-frame latency: {:.2} us)",
        prev / 1e6,
        t1 / 1e6
    );
    println!("the gap is the pipeline overlap between adjacent frames' waves");
}
