//! Package-size tuning with the parallel sweep runner: re-emulate the MP3
//! configuration at many package sizes at once and print the trade-off the
//! paper discusses (large packages amortise arbitration and clock-domain
//! synchronisation; tiny packages drown in per-package overhead).
//!
//! ```text
//! cargo run --release --example package_size_tuning
//! ```

use segbus::apps::mp3;
use segbus::emu::{run_many, EmulationReport};
use segbus::model::mapping::Psm;

fn main() {
    let sizes: Vec<u32> = vec![4, 6, 9, 12, 18, 27, 36, 54, 72, 108, 144, 288];
    let psms: Vec<Psm> = sizes
        .iter()
        .map(|&s| {
            mp3::three_segment_psm()
                .with_package_size(s)
                .expect("valid package size")
        })
        .collect();

    // One emulation per package size, fanned out over worker threads.
    let reports: Vec<EmulationReport> = run_many(&psms);

    println!("package-size sweep — MP3 decoder, 3 segments (Fig. 9 allocation)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10}",
        "size", "packages", "est_us", "bu12_wp_avg", "ca_grants"
    );
    let mut best = (0u32, f64::INFINITY);
    for (s, r) in sizes.iter().zip(&reports) {
        let t = r.execution_time().as_micros_f64();
        println!(
            "{s:>6} {:>10} {t:>10.2} {:>12.2} {:>10}",
            psms[0].application().total_packages(*s),
            r.bus[0].avg_waiting_period(),
            r.ca.grants
        );
        if t < best.1 {
            best = (*s, t);
        }
    }
    println!(
        "\nbest package size for this mapping: {} items ({:.2} us)",
        best.0, best.1
    );
}
