//! Quickstart: model a tiny application, map it onto a two-segment SegBus
//! platform and estimate its performance.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use segbus::emu::{Emulator, EmulatorConfig};
use segbus::model::prelude::*;

fn main() {
    // 1. The application (PSDF): a three-stage pipeline. Each flow is the
    //    paper's tuple (target, items, order, ticks-per-package).
    let mut app = Application::new("quickstart");
    let producer = app.add_process(Process::initial("PRODUCER"));
    let filter = app.add_process(Process::new("FILTER"));
    let sink = app.add_process(Process::final_("SINK"));
    app.add_flow(Flow::new(producer, filter, 10 * 36, 1, 200))
        .expect("valid flow");
    app.add_flow(Flow::new(filter, sink, 10 * 36, 2, 120))
        .expect("valid flow");

    // 2. The platform: two segments with their own clocks, a central
    //    arbiter, 36-item packages.
    let platform = Platform::builder("demo-platform")
        .package_size(36)
        .ca_clock(ClockDomain::from_mhz(111.0))
        .segment("Segment1", ClockDomain::from_mhz(91.0))
        .segment("Segment2", ClockDomain::from_mhz(98.0))
        .build()
        .expect("valid platform");

    // 3. The mapping: producer+filter on segment 1, sink on segment 2.
    let mut alloc = Allocation::new(platform.segment_count());
    alloc.assign(producer, SegmentId(0));
    alloc.assign(filter, SegmentId(0));
    alloc.assign(sink, SegmentId(1));

    // 4. Validate everything into a PSM and emulate.
    let psm = Psm::new(platform, app, alloc).expect("model validates");
    let report = Emulator::new(EmulatorConfig::traced()).run(&psm);

    println!("=== quickstart emulation ===");
    println!(
        "estimated execution time: {:.2} us",
        report.execution_time().as_micros_f64()
    );
    println!("packages crossing BU12:   {}", report.bus[0].total_in());
    println!(
        "SA1: {} intra-segment requests, {} inter-segment requests",
        report.sas[0].intra_requests, report.sas[0].inter_requests
    );
    println!();
    println!("{}", report.paper_style());
}
