//! The paper's case study end-to-end: the simplified stereo MP3 decoder on
//! one, two and three segments, with the estimation-accuracy check against
//! the reference simulator (paper §4).
//!
//! ```text
//! cargo run --release --example mp3_decoder
//! ```

use segbus::apps::mp3;
use segbus::emu::Emulator;
use segbus::rtl::RtlSimulator;

fn main() {
    let emulator = Emulator::default();
    let reference = RtlSimulator::default();

    println!("=== MP3 decoder on the SegBus platform (paper section 4) ===\n");

    // The three Fig. 9 configurations.
    for (name, psm) in [
        ("one segment", mp3::one_segment_psm()),
        ("two segments", mp3::two_segment_psm()),
        ("three segments", mp3::three_segment_psm()),
    ] {
        let r = emulator.run(&psm);
        println!(
            "{name:>14}: estimated {:.2} us  ({} packages cross BUs, {} CA grants)",
            r.execution_time().as_micros_f64(),
            r.inter_segment_packages(),
            r.ca.grants
        );
    }

    // The paper's accuracy experiments: estimator vs the "real platform".
    println!("\n--- estimation accuracy (emulator vs reference simulator) ---");
    let experiments = [
        ("3 segments, s=36      ", mp3::three_segment_psm()),
        (
            "3 segments, s=18      ",
            mp3::three_segment_psm()
                .with_package_size(18)
                .expect("valid size"),
        ),
        ("3 segments, P9 on seg3", mp3::three_segment_p9_moved_psm()),
    ];
    for (name, psm) in experiments {
        let est = emulator.run(&psm).execution_time();
        let act = reference
            .run(&psm)
            .expect("reference run completes")
            .execution_time();
        println!(
            "{name}: estimated {:7.2} us, actual {:7.2} us, accuracy {:.1}%",
            est.as_micros_f64(),
            act.as_micros_f64(),
            100.0 * est.0 as f64 / act.0 as f64
        );
    }

    // The full paper-style print-out of the 3-segment run.
    println!("\n--- three-segment results, paper style ---");
    let report =
        Emulator::new(segbus::emu::EmulatorConfig::traced()).run(&mp3::three_segment_psm());
    print!("{}", report.paper_style());

    // The BU bottleneck analysis.
    println!("\n--- border-unit analysis (UP / TCT / mean WP) ---");
    for (bu, up, tct, wp) in report.bu_analysis() {
        println!("{bu}: UP = {up} ticks, TCT = {tct} ticks, mean WP = {wp:.2} ticks");
    }
}
