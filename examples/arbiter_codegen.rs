//! Arbiter code generation — the paper's future-work feature realised:
//! derive the application schedule from the PSDF, verify it against the
//! emulator's counters, and print the generated VHDL/Rust arbiter tables
//! for the MP3 decoder's three-segment configuration.
//!
//! ```text
//! cargo run --example arbiter_codegen
//! ```

use segbus::apps::mp3;
use segbus::codegen::{rust_emit, vhdl, SystemSchedule};
use segbus::emu::Emulator;

fn main() {
    let psm = mp3::three_segment_psm();
    let schedule = SystemSchedule::derive(&psm);

    // The schedule is the static counterpart of the emulation: it must
    // predict the emulator's counters exactly.
    let report = Emulator::default().run(&psm);
    println!("schedule cross-check against the emulator:");
    for i in 0..schedule.segment_count() {
        let seg = segbus::model::SegmentId(i as u16);
        println!(
            "  SA{}: schedule predicts {:>3} inter / {:>3} intra requests, emulator counted {:>3} / {:>3}",
            i + 1,
            schedule.predicted_inter_requests(seg),
            schedule.predicted_intra_requests(seg),
            report.sas[i].inter_requests,
            report.sas[i].intra_requests,
        );
        assert_eq!(
            schedule.predicted_inter_requests(seg),
            report.sas[i].inter_requests
        );
        assert_eq!(
            schedule.predicted_intra_requests(seg),
            report.sas[i].intra_requests
        );
    }
    println!(
        "  CA : schedule predicts {} grants / {} releases, emulator counted {} / {}",
        schedule.predicted_ca_grants(),
        schedule.predicted_ca_releases(),
        report.ca.grants,
        report.ca.releases
    );
    assert_eq!(schedule.predicted_ca_grants(), report.ca.grants);

    // Generated artifacts.
    let vhdl_src = vhdl::to_vhdl(&psm, &schedule);
    let rust_src = rust_emit::to_rust(&psm, &schedule);
    println!(
        "\ngenerated {} lines of VHDL and {} lines of Rust tables",
        vhdl_src.lines().count(),
        rust_src.lines().count()
    );
    println!("\n--- VHDL excerpt (SA1 schedule ROM) ---");
    let mut in_rom = false;
    for line in vhdl_src.lines() {
        if line.contains("entity sa2_scheduler") {
            break;
        }
        if line.contains("constant ROM") {
            in_rom = true;
        }
        if in_rom {
            println!("{line}");
        }
        if line.trim() == ");" {
            in_rom = false;
        }
    }
    println!("\n--- Rust excerpt ---");
    for line in rust_src
        .lines()
        .skip_while(|l| !l.contains("SA_SCHEDULE_1"))
        .take(8)
    {
        println!("{line}");
    }
}
